"""Execution-backend benchmark: inline vs thread vs process-pool wall-clock.

PR 2's thread-pool scheduler only overlaps *waiting* — CPU-bound simulated
executions serialize on the GIL.  This bench measures the execution-service
subsystem on exactly that regime: the workload's database is wrapped so every
``execute`` also burns a fixed slice of pure-Python CPU (holding the GIL),
modelling a deployment where plan execution is local compute rather than a
DBMS round-trip.

Three runs of the ``random`` technique with the same seed and budget:

* **inline** — sequential on the scheduler thread (the baseline),
* **thread** — the PR 2 interleaved mode; expected ~1x here, because the GIL
  serializes the burn no matter how many threads wait on it,
* **process** — ``ProcessPoolBackend`` workers, each holding a warm database
  replica; the burn runs GIL-free in parallel.

The bench asserts the per-query traces are *identical* across all three runs
(the stable sha256 seeding at work — no ``PYTHONHASHSEED`` pinning), and
requires the process pool to be at least ``REQUIRED_SPEEDUP`` faster than
inline.  The speedup gate needs real parallel hardware: on a single-CPU
machine (CI containers pinned to one core) it is recorded as skipped —
physics, not a regression.

Run:  PYTHONPATH=src python benchmarks/bench_exec_backends.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.protocol import BudgetSpec
from repro.db.catalog import Column, ForeignKey, Schema, Table
from repro.db.datagen import ColumnSpec, DataGenerator, TableSpec
from repro.db.engine import Database
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.harness import WorkloadSession
from repro.workloads.base import Workload
from repro.utils import get_logger

NUM_QUERIES = 6
EXECUTIONS_PER_QUERY = 10
SMOKE_EXECUTIONS = 6
MAX_WORKERS = 4
REQUIRED_SPEEDUP = 2.0
#: Pure-Python iterations burned per plan execution (~10-20 ms of GIL-held
#: CPU), dwarfing both the simulated executor's own cost and the process
#: pool's per-task marshalling + startup overhead.
BURN_ITERATIONS = 500_000
SMOKE_BURN_ITERATIONS = 300_000


def effective_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class CpuBoundDatabase:
    """Database wrapper that burns GIL-held CPU per execution.

    The burn is a fixed, deterministic amount of pure-Python work, so every
    scheduling mode pays an identical per-execution cost and wall-clock
    differences come purely from parallelism.  The wrapper is picklable
    (inner database + burn count), so process-pool workers replicate it.
    """

    def __init__(self, inner: Database, burn_iterations: int = BURN_ITERATIONS) -> None:
        self._inner = inner
        self._burn_iterations = burn_iterations

    def execute(self, query, plan=None, timeout=None):
        result = self._inner.execute(query, plan, timeout=timeout)
        total = 0
        for i in range(self._burn_iterations):
            total += i * i
        return result

    def plan(self, query, *args, **kwargs):
        return self._inner.plan(query, *args, **kwargs)

    def warmup(self, queries):
        self._inner.warmup(queries)

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)


def build_bench_workload(burn_iterations: int) -> Workload:
    """A small star-schema workload whose executions are CPU-bound."""
    tables = [
        Table("orders", [Column("id"), Column("customer_id"), Column("product_id"),
                         Column("quantity"), Column("order_date", "date")]),
        Table("customer", [Column("id"), Column("region"), Column("segment")]),
        Table("product", [Column("id"), Column("category"), Column("price")]),
        Table("shipment", [Column("id"), Column("order_id"), Column("carrier"),
                           Column("ship_date", "date")]),
    ]
    foreign_keys = [
        ForeignKey("orders", "customer_id", "customer", "id"),
        ForeignKey("orders", "product_id", "product", "id"),
        ForeignKey("shipment", "order_id", "orders", "id"),
    ]
    schema = Schema("bench_exec", tables, foreign_keys)
    schema.index_all_join_keys()
    specs = {
        "orders": TableSpec(4000, {
            "quantity": ColumnSpec("categorical", cardinality=20, skew=1.2),
            "order_date": ColumnSpec("date", date_min=0, date_max=1000),
        }, fk_skew=1.3),
        "customer": TableSpec(500, {
            "region": ColumnSpec("categorical", cardinality=8, skew=1.0),
            "segment": ColumnSpec("categorical", cardinality=4, skew=0.8),
        }),
        "product": TableSpec(400, {
            "category": ColumnSpec("categorical", cardinality=10, skew=1.1),
            "price": ColumnSpec("categorical", cardinality=50, skew=1.3),
        }),
        "shipment": TableSpec(4500, {
            "carrier": ColumnSpec("categorical", cardinality=5, skew=1.0),
            "ship_date": ColumnSpec("date", date_min=0, date_max=1000),
        }, fk_skew=1.4),
    }
    database = Database(schema, DataGenerator(schema, specs, seed=11).generate(),
                        noise_sigma=0.1, seed=11)
    queries = []
    for i in range(NUM_QUERIES):
        if i % 2 == 0:
            queries.append(Query(
                name=f"bench_q{i}",
                table_refs=[TableRef("orders#1", "orders"), TableRef("customer#1", "customer"),
                            TableRef("product#1", "product"), TableRef("shipment#1", "shipment")],
                join_predicates=[
                    JoinPredicate("orders#1", "customer_id", "customer#1", "id"),
                    JoinPredicate("orders#1", "product_id", "product#1", "id"),
                    JoinPredicate("shipment#1", "order_id", "orders#1", "id"),
                ],
                filters=[FilterPredicate("customer#1", "region", "=", i % 8),
                         FilterPredicate("shipment#1", "ship_date", ">=", 100 * i)],
                template="bench_T1",
            ))
        else:
            queries.append(Query(
                name=f"bench_q{i}",
                table_refs=[TableRef("orders#1", "orders"), TableRef("customer#1", "customer"),
                            TableRef("product#1", "product")],
                join_predicates=[
                    JoinPredicate("orders#1", "customer_id", "customer#1", "id"),
                    JoinPredicate("orders#1", "product_id", "product#1", "id"),
                ],
                filters=[FilterPredicate("product#1", "category", "=", i % 10)],
                template="bench_T2",
            ))
    return Workload(
        name="bench_exec",
        database=CpuBoundDatabase(database, burn_iterations),
        queries=queries,
        max_aliases=1,
        description="CPU-bound execution-backend bench workload",
    )


def timed_run(workload: Workload, budget: BudgetSpec, seed: int, **session_kwargs):
    with WorkloadSession(workload, budget=budget, seed=seed, **session_kwargs) as session:
        start = time.perf_counter()
        results = session.run("random")
        return time.perf_counter() - start, results


def run_benchmark(executions: int, workers: int, burn_iterations: int, seed: int = 0) -> dict:
    workload = build_bench_workload(burn_iterations)
    budget = BudgetSpec(max_executions=executions)

    inline_s, inline = timed_run(workload, budget, seed)
    thread_s, threaded = timed_run(
        workload, budget, seed, backend="thread", max_workers=workers, interleave=True
    )
    process_s, pooled = timed_run(
        workload, budget, seed, backend="process", max_workers=workers, interleave=True
    )

    def equivalent(other):
        return all(
            inline[name].trace_signature() == other[name].trace_signature() for name in inline
        )

    cpus = effective_cpus()
    return {
        "technique": "random",
        "num_queries": NUM_QUERIES,
        "executions_per_query": executions,
        "total_executions": sum(result.num_executions for result in inline.values()),
        "max_workers": workers,
        "burn_iterations": burn_iterations,
        "effective_cpus": cpus,
        "backends": {
            "inline_s": inline_s,
            "thread_s": thread_s,
            "process_s": process_s,
        },
        "thread_speedup": inline_s / thread_s,
        "process_speedup": inline_s / process_s,
        "traces_equivalent": equivalent(threaded) and equivalent(pooled),
        "required_speedup": REQUIRED_SPEEDUP,
        "speedup_gate_enforced": cpus >= 2,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="smaller budget (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", help="write the result breakdown to PATH")
    parser.add_argument("--workers", type=int, default=MAX_WORKERS, help="worker pool size")
    args = parser.parse_args(argv)

    executions = SMOKE_EXECUTIONS if args.smoke else EXECUTIONS_PER_QUERY
    burn = SMOKE_BURN_ITERATIONS if args.smoke else BURN_ITERATIONS
    report = run_benchmark(executions, args.workers, burn)
    print(
        f"execution backends @ {report['num_queries']} queries x "
        f"{report['executions_per_query']} executions ({report['max_workers']} workers, "
        f"{report['effective_cpus']} cpus)"
    )
    print(f"  inline   {report['backends']['inline_s'] * 1e3:8.1f} ms")
    print(f"  thread   {report['backends']['thread_s'] * 1e3:8.1f} ms  "
          f"({report['thread_speedup']:.2f}x — GIL-bound, expected ~1x)")
    print(f"  process  {report['backends']['process_s'] * 1e3:8.1f} ms  "
          f"({report['process_speedup']:.2f}x)")
    print(f"  traces equivalent: {report['traces_equivalent']}")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        get_logger("bench").info("wrote %s", args.json)

    failures = []
    if not report["traces_equivalent"]:
        failures.append("backend traces diverge from the inline schedule")
    if report["speedup_gate_enforced"]:
        if report["process_speedup"] < REQUIRED_SPEEDUP:
            failures.append(
                f"process-pool speedup {report['process_speedup']:.2f}x below the "
                f"required {REQUIRED_SPEEDUP}x"
            )
    else:
        print(
            f"  NOTE: speedup gate skipped — {report['effective_cpus']} effective CPU(s); "
            "parallel speedup needs >= 2"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
