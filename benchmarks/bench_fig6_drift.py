"""Figure 6: data drift and re-optimization on the Stack-analogue workload.

Left plot: plans optimized on the past snapshot executed on the future
snapshot vs Bao and vs freshly optimized plans vs re-optimization seeded with
the past plan.  Middle plot: BO on the future data using the stale (past) VAE
vs a retrained VAE.  Right plot: re-optimization converges faster than
optimizing from scratch.
"""

from __future__ import annotations

from repro.core import BayesQO, BayesQOConfig, VAETrainingConfig, reoptimize, train_schema_model
from repro.baselines import BaoOptimizer
from repro.harness import WorkloadSummary, format_summaries
from repro.workloads import STACK_DATE_2017, rollback_to_date

NUM_DRIFT_QUERIES = 3
EXECUTIONS = 25
VAE_CONFIG = VAETrainingConfig(training_steps=1200, corpus_queries=100, latent_dim=16, hidden_dim=160)


def run_drift_experiment(stack_workload):
    future_db = stack_workload.database
    past_db = rollback_to_date(future_db, STACK_DATE_2017)
    queries = stack_workload.queries[:NUM_DRIFT_QUERIES]

    past_model = train_schema_model(past_db, stack_workload.queries, VAE_CONFIG,
                                    max_aliases=stack_workload.max_aliases)
    future_model = train_schema_model(future_db, stack_workload.queries, VAE_CONFIG,
                                      max_aliases=stack_workload.max_aliases)

    config = BayesQOConfig(max_executions=EXECUTIONS, num_candidates=128, seed=0)
    past_bayes = BayesQO(past_db, past_model, config=config)
    future_bayes = BayesQO(future_db, future_model, config=config)
    stale_vae_bayes = BayesQO(future_db, past_model, config=config)

    rows = {"bao": [], "past_plan": [], "future_bo": [], "reopt": [], "stale_vae": [], "fresh_vae": []}
    reopt_costs, scratch_costs = [], []
    for query in queries:
        bao_future = BaoOptimizer(future_db).optimize(query)
        rows["bao"].append(bao_future.best_latency)
        past_run = past_bayes.optimize(query)
        past_plan = past_run.best_plan
        # The stale plan executed against the future data.
        rows["past_plan"].append(future_db.execute(query, past_plan, timeout=600.0).latency)
        future_run = future_bayes.optimize(query)
        rows["future_bo"].append(future_run.best_latency_or(bao_future.best_latency))
        scratch_costs.append(future_run.total_cost)
        outcome = reoptimize(future_bayes, query, past_plan, max_executions=EXECUTIONS // 2)
        rows["reopt"].append(outcome.result.best_latency_or(bao_future.best_latency))
        reopt_costs.append(outcome.result.total_cost)
        rows["stale_vae"].append(
            stale_vae_bayes.optimize(query).best_latency_or(bao_future.best_latency)
        )
        rows["fresh_vae"].append(rows["future_bo"][-1])
    return rows, reopt_costs, scratch_costs


def test_fig6_drift_and_reoptimization(benchmark, stack_workload):
    rows, reopt_costs, scratch_costs = benchmark.pedantic(
        run_drift_experiment, args=(stack_workload,), rounds=1, iterations=1
    )
    print()
    labels = ["Bao (future)", "Past plan on future data", "Bao-only BO (future)",
              "Bao + past plan BO (reopt)"]
    summaries = [
        WorkloadSummary.from_latencies(rows["bao"]),
        WorkloadSummary.from_latencies(rows["past_plan"]),
        WorkloadSummary.from_latencies(rows["future_bo"]),
        WorkloadSummary.from_latencies(rows["reopt"]),
    ]
    print(format_summaries(labels, summaries, "Figure 6 (left): plan drift & reoptimization"))
    print()
    vae_labels = ["Past (stale) VAE", "Retrained VAE"]
    vae_summaries = [
        WorkloadSummary.from_latencies(rows["stale_vae"]),
        WorkloadSummary.from_latencies(rows["fresh_vae"]),
    ]
    print(format_summaries(vae_labels, vae_summaries, "Figure 6 (middle): stale vs retrained VAE"))
    print()
    print(
        "Figure 6 (right): mean optimization budget — "
        f"reoptimization {sum(reopt_costs) / len(reopt_costs):.1f}s vs "
        f"from-scratch {sum(scratch_costs) / len(scratch_costs):.1f}s"
    )
    # Shape assertions: the past plans still beat Bao on average, and
    # re-optimization does not lose to the stale plan.
    assert summaries[1].mean <= summaries[0].mean * 1.5
    assert summaries[3].mean <= summaries[1].mean * 1.2
