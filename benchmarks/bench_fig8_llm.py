"""Figure 8: the cross-query PlanLM on seen vs held-out query templates.

The PlanLM (standing in for the paper's fine-tuned GPT-4o-mini) is trained on
the best plans from BayesQO runs over a CEB-analogue workload.  For each test
query we sample plans from the model, execute the best one, and report the
percentage difference against the optimal Bao plan — once for queries whose
template was part of fine-tuning, and once for queries from held-out
templates.  The shape to look for: the same-template distribution is shifted
toward (or below) 0%, the held-out distribution is substantially worse.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BaoOptimizer
from repro.core import BayesQO, BayesQOConfig, VAETrainingConfig, train_schema_model
from repro.harness import format_table, percentage_difference
from repro.llm import PlanLM, PlanLMConfig, build_finetune_dataset
from repro.plans.encoding import sequence_length
from repro.workloads import build_ceb_workload

TRAIN_QUERIES_PER_TEMPLATE = 3
SAMPLES_PER_QUERY = 8
EXECUTIONS = 25


def run_llm_experiment():
    workload = build_ceb_workload(scale=0.12, seed=0, num_templates=4, queries_per_template=5)
    database = workload.database
    vae_config = VAETrainingConfig(training_steps=1200, corpus_queries=100, latent_dim=16,
                                   hidden_dim=160)
    schema_model = train_schema_model(database, workload.queries, vae_config,
                                      max_aliases=workload.max_aliases)
    bayes = BayesQO(database, schema_model, config=BayesQOConfig(max_executions=EXECUTIONS, seed=0))

    templates = workload.templates()
    train_templates, holdout_templates = templates[:-1], templates[-1:]
    runs, queries_by_name = {}, {}
    for template in train_templates:
        for query in workload.queries_for_template(template)[:TRAIN_QUERIES_PER_TEMPLATE]:
            runs[query.name] = bayes.optimize(query)
            queries_by_name[query.name] = query

    max_length = sequence_length(max(query.num_tables for query in workload.queries))
    examples = build_finetune_dataset(runs, queries_by_name, schema_model.vocabulary, max_length,
                                      top_k=5)
    model = PlanLM(schema_model.vocabulary, max_length, PlanLMConfig(epochs=120, seed=0))
    model.fit(examples)

    def evaluate(queries):
        differences = []
        for query in queries:
            bao_best = BaoOptimizer(database).optimize(query).best_latency
            best = np.inf
            for plan in model.generate_plans(query, SAMPLES_PER_QUERY, seed=1):
                execution = database.execute(query, plan, timeout=bao_best * 8.0)
                if not execution.timed_out:
                    best = min(best, execution.latency)
            if not np.isfinite(best):
                best = bao_best * 8.0
            differences.append(percentage_difference(best, bao_best))
        return differences

    seen_queries = [
        workload.queries_for_template(template)[TRAIN_QUERIES_PER_TEMPLATE]
        for template in train_templates
    ]
    holdout_queries = workload.queries_for_template(holdout_templates[0])[:3]
    return evaluate(seen_queries), evaluate(holdout_queries)


def test_fig8_llm_template_generalization(benchmark):
    seen, holdout = benchmark.pedantic(run_llm_experiment, rounds=1, iterations=1)
    print()
    rows = [
        ["same-template queries", f"{np.median(seen):.1f}%", f"{np.mean(seen):.1f}%"],
        ["held-out-template queries", f"{np.median(holdout):.1f}%", f"{np.mean(holdout):.1f}%"],
    ]
    print(
        format_table(
            ["query group", "median % diff vs Bao", "mean % diff vs Bao"],
            rows,
            title="Figure 8: PlanLM plans vs optimal Bao plan (lower/negative is better)",
        )
    )
    # Shape: generalization within seen templates is no worse than to unseen ones.
    assert np.median(seen) <= np.median(holdout) + 1e-9
