"""Figure 4: case studies — best plan runtime vs optimization time.

Reproduces the per-query curves of Figure 4: for selected queries, the best
latency achieved by each technique as a function of consumed optimization
budget (plan-execution time only), with Bao shown as a flat line (it cannot
improve once its hint sets have been executed).
"""

from __future__ import annotations

#: Per-query plan-execution budget shared by the comparison benches.
BENCH_EXECUTIONS = 35
#: Number of workload queries sampled for the comparison benches.
BENCH_QUERIES = 6

import numpy as np

from repro.baselines import BalsaOptimizer, BaoOptimizer, RandomSearch
from repro.core import BayesQO
from repro.harness import format_table

NUM_CASE_STUDIES = 2
CURVE_POINTS = 6


def run_case_studies(job_workload, job_schema_model, bench_bayes_config):
    database = job_workload.database
    queries = job_workload.queries[:NUM_CASE_STUDIES]
    bayes = BayesQO(database, job_schema_model, config=bench_bayes_config)
    outcomes = {}
    for query in queries:
        bao = BaoOptimizer(database).optimize(query)
        outcomes[query.name] = {
            "bao": bao,
            "bayes": bayes.optimize(query, max_executions=BENCH_EXECUTIONS),
            "random": RandomSearch(database, seed=1).optimize(query, max_executions=BENCH_EXECUTIONS),
            "balsa": BalsaOptimizer(database).optimize(query, max_executions=BENCH_EXECUTIONS),
        }
    return outcomes


def test_fig4_case_studies(benchmark, job_workload, job_schema_model, bench_bayes_config):
    outcomes = benchmark.pedantic(
        run_case_studies, args=(job_workload, job_schema_model, bench_bayes_config),
        rounds=1, iterations=1,
    )
    print()
    for name, runs in outcomes.items():
        bao_best = runs["bao"].best_latency
        max_cost = max(
            runs[technique].total_cost for technique in ("bayes", "random", "balsa")
        )
        budgets = np.linspace(max_cost / CURVE_POINTS, max_cost, CURVE_POINTS)
        rows = []
        for technique in ("bayes", "random", "balsa"):
            result = runs[technique]
            curve = [result.best_latency_at_cost(budget) for budget in budgets]
            rows.append([technique] + [f"{value:.4f}" if np.isfinite(value) else "-" for value in curve])
        rows.append(["bao (flat)"] + [f"{bao_best:.4f}"] * CURVE_POINTS)
        headers = ["technique"] + [f"@{budget:.1f}s" for budget in budgets]
        print(format_table(headers, rows, title=f"Figure 4 case study: {name} (best runtime so far)"))
        print()
        # BayesQO ends at least as good as Bao's best plan.
        assert runs["bayes"].best_latency <= bao_best + 1e-9
