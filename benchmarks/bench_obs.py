"""Observability benchmark: the acceptance gates of the telemetry layer.

The observability layer's contract is "free when off, cheap when on, and it
never perturbs what it observes".  This benchmark drives the serve stream of
``bench_serve.py`` twice — once untraced, once through a live
:class:`~repro.obs.Tracer` — and gates on:

* **disabled overhead** — with the default :data:`~repro.obs.NULL_TRACER`,
  the serve fast path costs at most 2% more than an untraced replica of the
  same lookup (measured over a poisoned database, min-of-trials).
* **traced overhead** — with a live tracer the fast path costs at most 10%
  more.  The steady state records only *causally novel* arrivals (first
  arrival per fingerprint, first after each admission/upsert), so repeat
  arrivals cost one dict probe.
* **determinism** — the traced and untraced streams produce bit-for-bit
  identical serve traces: telemetry observes, never decides.
* **causal chains** — from the traced stream's flat span list, at least one
  complete chain reconstructs by links alone: a fast-path arrival *follows*
  a store upsert, the upsert's *parent* is a re-optimization span, which
  *follows* an admission verdict, which *follows* the arrival that tripped
  it.

``disabled_overhead_ratio`` and ``traced_overhead_ratio`` are the headline
metrics tracked by ``bench_trend.py``.

Run:  PYTHONPATH=src python benchmarks/bench_obs.py [--smoke] [--json PATH] [--trace PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter as TallyCounter

from repro.core.protocol import BudgetSpec
from repro.db.query import Query
from repro.obs import NULL_TRACER, Tracer, write_chrome_trace
from repro.serve import (
    DriftEvent,
    PlanServer,
    ServeConfig,
    ServeDecision,
    TrafficConfig,
    TrafficGenerator,
    drive_stream,
)
from repro.utils import get_logger
from repro.workloads.drift import rollback_to_date
from repro.workloads.stack import STACK_DATE_2017, build_stack_workload

logger = get_logger("bench")

SEED = 0
FULL_ARRIVALS = 500
SMOKE_ARRIVALS = 160
FULL_QUERIES = 16
SMOKE_QUERIES = 10
MAINTENANCE_EVERY = 25
QPS_PROBES = 20_000
PROBE_TRIALS = 7

DISABLED_GATE = 1.02
TRACED_GATE = 1.10


class _PoisonedDatabase:
    """Any attribute access raises — the probe must stay a pure store lookup."""

    def __getattr__(self, name: str):
        raise AssertionError(f"fast path touched database.{name}")


def _serve_config() -> ServeConfig:
    return ServeConfig(
        technique="bao",
        budget=BudgetSpec(max_executions=16),
        drift_factor=1.3,
        seed=SEED,
    )


def _traffic_config(arrivals: int) -> TrafficConfig:
    return TrafficConfig(
        num_arrivals=arrivals,
        zipf_alpha=1.1,
        seed=SEED,
        burst_every=120,
        burst_length=40,
        drift_events=(DriftEvent(index=arrivals // 2, cutoff=None),),
    )


def _untraced_serve(server: PlanServer, query: Query) -> ServeDecision:
    """The pre-instrumentation fast path, verbatim — the overhead baseline."""
    server.counters.arrivals += 1
    entry = server.store.get(query)
    if entry is not None and entry.best_plan is not None:
        entry.serves += 1
        server.counters.fast_path += 1
        server.admission.note_arrival(entry.fingerprint, entry.optimized)
        return ServeDecision(
            query=query, plan=entry.best_plan, source="store", fingerprint=entry.fingerprint
        )
    raise AssertionError("overhead probe queries must all be store hits")


def _probe(serve, queries: list[Query]) -> float:
    """Min-of-trials wall time of ``QPS_PROBES`` fast-path serves."""
    best = float("inf")
    for _ in range(PROBE_TRIALS):
        start = time.perf_counter()
        for i in range(QPS_PROBES):
            serve(queries[i % len(queries)])
        best = min(best, time.perf_counter() - start)
    return best


def count_causal_chains(spans) -> int:
    """Complete arrival -> admission -> reopt -> upsert -> serve chains."""
    by_id = {span.span_id: span for span in spans}
    chains = 0
    for span in spans:
        if span.name != "serve.arrival" or span.attrs.get("source") != "store":
            continue
        upsert = by_id.get(span.attrs.get("follows"))
        if upsert is None or upsert.name != "store.upsert":
            continue
        reopt = by_id.get(upsert.parent_id)
        if reopt is None or reopt.name != "serve.reoptimize":
            continue
        verdict = by_id.get(reopt.attrs.get("follows"))
        if verdict is None or verdict.name != "serve.admission":
            continue
        origin = by_id.get(verdict.attrs.get("follows"))
        if origin is None or origin.name != "serve.arrival":
            continue
        chains += 1
    return chains


def run_benchmark(arrivals: int, num_queries: int, trace_path: str | None = None) -> dict:
    workload = build_stack_workload(
        scale=0.05, seed=SEED, num_templates=8, num_queries=num_queries
    )
    future = workload.database
    past = rollback_to_date(future, STACK_DATE_2017)
    config = _serve_config()
    generator = TrafficGenerator(workload.queries, _traffic_config(arrivals))

    # ---------------------------------------------------------- untraced reference
    with PlanServer(past, config=config, workload=workload) as untraced_server:
        untraced_result = drive_stream(
            untraced_server, generator, future, maintenance_every=MAINTENANCE_EVERY
        )

    # ---------------------------------------------------------- traced stream
    tracer = Tracer(capacity=262_144)
    with PlanServer(past, config=config, workload=workload, tracer=tracer) as server:
        traced_result = drive_stream(
            server, generator, future, maintenance_every=MAINTENANCE_EVERY
        )
        spans = tracer.spans()
        if trace_path is not None:
            write_chrome_trace(spans, trace_path, process_name="bench_obs")

        # ------------------------------------------------------ overhead probes
        # All against a poisoned database: pure store lookups, no execution.
        known = [entry.query for entry in server.store.entries.values()]
        live_database = server.database
        server.database = _PoisonedDatabase()
        try:
            baseline_s = _probe(lambda q: _untraced_serve(server, q), known)
            server.tracer = NULL_TRACER
            disabled_s = _probe(server.serve, known)
            server.tracer = Tracer(capacity=262_144)
            traced_s = _probe(server.serve, known)
        finally:
            server.database = live_database
            server.tracer = tracer

    categories = TallyCounter(span.category for span in spans)
    names = TallyCounter(span.name for span in spans)
    return {
        "arrivals": arrivals,
        "distinct_queries": generator.distinct_queries(),
        "spans": len(spans),
        "span_categories": dict(sorted(categories.items())),
        "span_names": dict(sorted(names.items())),
        "complete_chains": count_causal_chains(spans),
        "traced_equals_untraced": traced_result.trace() == untraced_result.trace(),
        "baseline_serve_us": baseline_s / QPS_PROBES * 1e6,
        "disabled_serve_us": disabled_s / QPS_PROBES * 1e6,
        "traced_serve_us": traced_s / QPS_PROBES * 1e6,
        "disabled_overhead_ratio": disabled_s / baseline_s,
        "traced_overhead_ratio": traced_s / baseline_s,
        "disabled_gate": DISABLED_GATE,
        "traced_gate": TRACED_GATE,
    }


def gate_failures(report: dict, smoke: bool) -> list[str]:
    failures = []
    if not smoke and report["arrivals"] < 500:
        failures.append("stream shorter than the 500-arrival gate")
    if report["disabled_overhead_ratio"] > DISABLED_GATE:
        failures.append(
            f"disabled-tracing overhead {report['disabled_overhead_ratio']:.3f} "
            f"exceeds {DISABLED_GATE}"
        )
    if report["traced_overhead_ratio"] > TRACED_GATE:
        failures.append(
            f"enabled-tracing overhead {report['traced_overhead_ratio']:.3f} "
            f"exceeds {TRACED_GATE}"
        )
    if not report["traced_equals_untraced"]:
        failures.append("tracing changed the serve stream (determinism broken)")
    if report["complete_chains"] < 1:
        failures.append("no complete causal chain reconstructs from the trace")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="smaller stream (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", help="write the result breakdown to PATH")
    parser.add_argument(
        "--trace", metavar="PATH", help="export the traced stream as a Chrome/Perfetto trace"
    )
    args = parser.parse_args(argv)

    arrivals = SMOKE_ARRIVALS if args.smoke else FULL_ARRIVALS
    num_queries = SMOKE_QUERIES if args.smoke else FULL_QUERIES
    report = run_benchmark(arrivals, num_queries, trace_path=args.trace)

    print(
        f"observability @ {report['arrivals']} arrivals, "
        f"{report['distinct_queries']} distinct queries"
    )
    print(
        f"  fast path   baseline {report['baseline_serve_us']:.2f}us, "
        f"disabled {report['disabled_serve_us']:.2f}us "
        f"(x{report['disabled_overhead_ratio']:.3f}, gate {DISABLED_GATE}), "
        f"traced {report['traced_serve_us']:.2f}us "
        f"(x{report['traced_overhead_ratio']:.3f}, gate {TRACED_GATE})"
    )
    print(
        f"  trace       {report['spans']} spans across "
        f"{len(report['span_categories'])} layers: {report['span_categories']}"
    )
    print(
        f"  causality   {report['complete_chains']} complete "
        f"arrival->admission->reopt->upsert->serve chains"
    )
    print(f"  determinism traced == untraced stream: {report['traced_equals_untraced']}")

    if args.trace:
        logger.info("wrote Chrome trace to %s", args.trace)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        logger.info("wrote %s", args.json)

    failures = gate_failures(report, args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
