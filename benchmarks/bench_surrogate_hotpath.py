"""Microbenchmark: incremental surrogate engine vs the from-scratch seed path.

The paper's Figure 9 argues that BO overhead (surrogate update + timeout
calculation) stays sub-second per iteration.  The seed implementation refit the
exact GP from scratch (hyper-parameter optimization included) on every
observation and cloned + refit the model once per bisection level of the
uncertainty-timeout rule.  This bench measures both hot-path components at
``n = 60`` observations:

* **seed path** — full ``CensoredGP.fit`` per iteration, plus sequential
  bisection where every level imputes and refits a fresh ``ExactGP``;
* **incremental path** — warm ``add_observation`` (rank-1 Cholesky update,
  amortizing one full refit every ``refit_every`` iterations), plus one
  batched ``fantasize_batch`` call covering the whole bisection grid.

It asserts the two paths agree numerically (atol 1e-6) and that the
incremental path is at least 5x faster, then optionally writes the breakdown
to JSON for CI perf trajectories.

Run:  PYTHONPATH=src python benchmarks/bench_surrogate_hotpath.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import copy
import json
import math
import sys
import time

import numpy as np
from scipy import linalg, optimize

from repro.bo.censored import truncated_normal_mean
from repro.bo.gp import CensoredGP, ExactGP
from repro.utils import get_logger

N_OBSERVATIONS = 60
DIM = 8
BISECTION_STEPS = 8
REFIT_EVERY = 5
KAPPA = 1.0
MAX_MULTIPLIER = 16.0
ATOL = 1e-6
REQUIRED_SPEEDUP = 5.0


def make_dataset(n: int = N_OBSERVATIONS, dim: int = DIM, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, dim))
    y = np.sin(3.0 * x.sum(axis=1)) + 0.1 * rng.standard_normal(n)
    censored = rng.random(n) < 0.15
    y[censored] += 0.5  # censored entries are lower bounds
    return x, y, censored, rng


def timed(fn, repetitions: int) -> tuple[float, object]:
    """Best-of-``repetitions`` wall time in seconds, plus the last result."""
    best, result = math.inf, None
    for _ in range(repetitions):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# --------------------------------------------------------------------- seed path
class SeedExactGP(ExactGP):
    """Replica of the seed fit path: every marginal-likelihood evaluation
    recomputes the Gram matrix from the raw inputs, and L-BFGS approximates
    gradients by finite differences (~4 extra evaluations per step)."""

    def _negative_log_marginal(self, params):
        lengthscale, outputscale, noise = np.exp(params)
        kernel = self.kernel.with_params(float(lengthscale), float(outputscale))
        cov = kernel(self._x, self._x) + (noise + 1e-8) * np.eye(len(self._x))
        try:
            chol = linalg.cholesky(cov, lower=True)
        except linalg.LinAlgError:
            return 1e10
        alpha = linalg.cho_solve((chol, True), self._y)
        return float(
            0.5 * self._y @ alpha
            + np.log(np.diag(chol)).sum()
            + 0.5 * len(self._y) * np.log(2.0 * np.pi)
        )

    def _optimize_hyperparameters(self):
        initial = np.log([self.kernel.lengthscale, self.kernel.outputscale, self.noise])
        result = optimize.minimize(
            self._negative_log_marginal,
            initial,
            method="L-BFGS-B",
            bounds=[(-3.0, 3.0), (-4.0, 4.0), (-8.0, 1.0)],
            options={"maxiter": 40},
        )
        lengthscale, outputscale, noise = np.exp(result.x)
        self.kernel = self.kernel.with_params(float(lengthscale), float(outputscale))
        self.noise = float(noise)


class SeedCensoredGP(CensoredGP):
    """CensoredGP wired to the seed ExactGP (refit from scratch, no gradients),
    including the seed EM loop that refits the whole GP per imputation step."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gp = SeedExactGP(kernel=self.gp.kernel, noise=self.gp.noise)

    def fit(self, x, y, censored):
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        censored = np.asarray(censored, dtype=bool).reshape(-1)
        self._x, self._values, self._censored = x, y, censored
        imputed = y.copy()
        self.gp.fit(x, imputed)
        for _ in range(self.em_iterations if censored.any() else 0):
            mean, std = self.gp.predict(x[censored])
            imputed[censored] = truncated_normal_mean(mean, std, y[censored])
            self.gp.fit(x, imputed, optimize_hyperparameters=False)
        return self


def seed_clone_fantasize(gp: ExactGP, x_train, y_train, x_new, level, x_query):
    """The seed fantasize: impute under the posterior, clone, refit, predict."""
    mean, std = gp.predict(np.atleast_2d(x_new))
    imputed = float(truncated_normal_mean(mean, std, np.array([level]))[0])
    clone = ExactGP(kernel=gp.kernel, noise=gp.noise)
    clone.fit(np.vstack([x_train, x_new]), np.append(y_train, imputed), optimize_hyperparameters=False)
    return clone.predict(x_query)


def seed_timeout(gp: ExactGP, x_train, y_train, candidate, best_log, high_log):
    """Sequential bisection, one clone-and-refit per probed level (seed path)."""
    query = np.atleast_2d(candidate)

    def confident(log_tau: float) -> bool:
        mean, std = seed_clone_fantasize(gp, x_train, y_train, candidate, log_tau, query)
        return best_log <= mean[0] - KAPPA * std[0]

    low, high = best_log, high_log
    if not confident(high):
        return math.exp(high)
    for _ in range(BISECTION_STEPS):
        mid = 0.5 * (low + high)
        if confident(mid):
            high = mid
        else:
            low = mid
    return math.exp(high)


# --------------------------------------------------- incremental path
def batched_timeout(surrogate: CensoredGP, candidate, best_log, high_log):
    """One vectorized fantasize over the full bisection grid."""
    levels = np.linspace(best_log, high_log, 2**BISECTION_STEPS + 1)
    means, stds = surrogate.fantasize_batch(candidate, levels, np.atleast_2d(candidate))
    confident = best_log <= means[:, 0] - KAPPA * stds[:, 0]
    if not confident[-1]:
        return math.exp(high_log)
    return math.exp(float(levels[int(np.argmax(confident))]))


# --------------------------------------------------------------- equivalence
def check_equivalence(x, y, censored, rng) -> dict[str, float]:
    """Incremental / batched results must match the from-scratch path to atol 1e-6."""
    query = rng.random((25, x.shape[1]))
    # Rank-1 updates vs from-scratch refit (uncensored tail, fixed hyper-parameters).
    warm = ExactGP().fit(x[:-5], y[:-5])
    for i in range(len(x) - 5, len(x)):
        warm.add_observation(x[i], y[i])
    scratch = ExactGP(kernel=warm.kernel, noise=warm.noise).fit(x, y, optimize_hyperparameters=False)
    mean_w, std_w = warm.predict(query)
    mean_s, std_s = scratch.predict(query)
    update_diff = max(np.abs(mean_w - mean_s).max(), np.abs(std_w - std_s).max())

    # Batched fantasize vs the seed clone-and-refit per level.
    surrogate = CensoredGP().fit(x, y, censored)
    candidate = rng.random(x.shape[1])
    levels = np.linspace(-0.5, 2.0, 9)
    means_b, stds_b = surrogate.fantasize_batch(candidate, levels, np.atleast_2d(candidate))
    fitted_values = surrogate.gp._y_raw
    fantasize_diff = 0.0
    for i, level in enumerate(levels):
        mean_r, std_r = seed_clone_fantasize(
            surrogate.gp, x, fitted_values, candidate, float(level), np.atleast_2d(candidate)
        )
        fantasize_diff = max(
            fantasize_diff,
            abs(means_b[i, 0] - mean_r[0]),
            abs(stds_b[i, 0] - std_r[0]),
        )
    return {"update_max_abs_diff": float(update_diff), "fantasize_max_abs_diff": float(fantasize_diff)}


# ------------------------------------------------------------------------ bench
def run_benchmark(repetitions: int = 3, seed: int = 0) -> dict:
    x, y, censored, rng = make_dataset(seed=seed)
    candidate = rng.random(DIM)
    best_latency = float(np.exp(y[~censored].min()))
    best_log = math.log(best_latency)
    high_log = math.log(best_latency * MAX_MULTIPLIER)

    # Seed path: full refit (with finite-difference hyper-parameter
    # optimization) each iteration.
    seed_update, seed_surrogate = timed(lambda: SeedCensoredGP().fit(x, y, censored), repetitions)
    fitted_values = seed_surrogate.gp._y_raw
    seed_tau_time, seed_tau = timed(
        lambda: seed_timeout(seed_surrogate.gp, x, fitted_values, candidate, best_log, high_log),
        repetitions,
    )

    # Incremental path: warm rank-1 update, amortizing one full refit per window.
    warm_base = CensoredGP().fit(x[:-1], y[:-1], censored[:-1])

    def warm_update():
        surrogate = copy.deepcopy(warm_base)
        start = time.perf_counter()
        surrogate.add_observation(x[-1], y[-1], censored[-1])
        return time.perf_counter() - start, surrogate

    incremental_update = math.inf
    warm_surrogate = None
    for _ in range(repetitions):
        elapsed, warm_surrogate = warm_update()
        incremental_update = min(incremental_update, elapsed)
    # One in every `refit_every` iterations pays a full from-scratch refit —
    # the new one, with cached distances and analytic MLL gradients.
    full_refit, _ = timed(lambda: CensoredGP().fit(x, y, censored), repetitions)
    amortized_update = (
        (REFIT_EVERY - 1) * incremental_update + full_refit
    ) / REFIT_EVERY
    fast_tau_time, fast_tau = timed(
        lambda: batched_timeout(warm_surrogate, candidate, best_log, high_log), repetitions
    )

    equivalence = check_equivalence(x, y, censored, rng)
    seed_total = seed_update + seed_tau_time
    fast_total = amortized_update + fast_tau_time
    return {
        "n_observations": N_OBSERVATIONS,
        "dim": DIM,
        "refit_every": REFIT_EVERY,
        "bisection_steps": BISECTION_STEPS,
        "seed_ms": {
            "surrogate_update": seed_update * 1e3,
            "calculate_timeout": seed_tau_time * 1e3,
            "total": seed_total * 1e3,
        },
        "incremental_ms": {
            "surrogate_update_raw": incremental_update * 1e3,
            "full_refit": full_refit * 1e3,
            "surrogate_update_amortized": amortized_update * 1e3,
            "calculate_timeout": fast_tau_time * 1e3,
            "total": fast_total * 1e3,
        },
        "speedup": seed_total / fast_total,
        "timeouts": {"seed": seed_tau, "incremental": fast_tau},
        "equivalence": equivalence,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="single repetition (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", help="write the result breakdown to PATH")
    args = parser.parse_args(argv)

    report = run_benchmark(repetitions=1 if args.smoke else 3)
    print(f"surrogate hot path @ n={report['n_observations']}, dim={report['dim']}")
    print(f"  seed        update {report['seed_ms']['surrogate_update']:8.2f} ms   "
          f"timeout {report['seed_ms']['calculate_timeout']:8.2f} ms   "
          f"total {report['seed_ms']['total']:8.2f} ms")
    print(f"  incremental update {report['incremental_ms']['surrogate_update_amortized']:8.2f} ms   "
          f"timeout {report['incremental_ms']['calculate_timeout']:8.2f} ms   "
          f"total {report['incremental_ms']['total']:8.2f} ms")
    print(f"  speedup {report['speedup']:.1f}x   "
          f"(update diff {report['equivalence']['update_max_abs_diff']:.2e}, "
          f"fantasize diff {report['equivalence']['fantasize_max_abs_diff']:.2e})")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        get_logger("bench").info("wrote %s", args.json)

    failures = []
    if report["equivalence"]["update_max_abs_diff"] > ATOL:
        failures.append("incremental update diverges from the from-scratch posterior")
    if report["equivalence"]["fantasize_max_abs_diff"] > ATOL:
        failures.append("batched fantasize diverges from the clone-refit posterior")
    if report["speedup"] < REQUIRED_SPEEDUP:
        failures.append(f"speedup {report['speedup']:.1f}x below the required {REQUIRED_SPEEDUP}x")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
