"""Figure 3: best plans found at the end of optimization with each technique.

For a sample of JOB-analogue queries, every technique (BayesQO, Random, Balsa)
gets the same per-query execution budget; the bench prints the fraction of
queries achieving at least each percentage improvement over the best Bao
hint-set plan — the CDF the paper plots.  The shape to look for: BayesQO's
curve dominates (it never regresses below Bao because it is initialized with
the Bao plans, and it finds additional improvement on more queries), Random
finds no improvement for a sizeable fraction of queries, and Balsa trails.
"""

from __future__ import annotations

#: Per-query plan-execution budget shared by the comparison benches.
BENCH_EXECUTIONS = 35
#: Number of workload queries sampled for the comparison benches.
BENCH_QUERIES = 4

from repro.harness import BudgetSpec, format_cdf, improvement_cdf, improvement_distribution, run_comparison


def run_figure3(job_workload, job_schema_model, bench_bayes_config):
    queries = job_workload.queries[:BENCH_QUERIES]
    return run_comparison(
        job_workload,
        queries,
        BudgetSpec(max_executions=BENCH_EXECUTIONS),
        techniques=["bayesqo", "random", "balsa"],
        schema_model=job_schema_model,
        bayes_config=bench_bayes_config,
    )


def test_fig3_improvement_over_bao(benchmark, job_workload, job_schema_model, bench_bayes_config):
    run = benchmark.pedantic(
        run_figure3, args=(job_workload, job_schema_model, bench_bayes_config), rounds=1, iterations=1
    )
    series = {}
    improvements_by_technique = {}
    for technique, results in run.results.items():
        improvements = improvement_distribution(results, run.bao_latencies)
        improvements_by_technique[technique] = improvements
        series[technique] = improvement_cdf(improvements, thresholds=[0.0, 10.0, 25.0, 50.0, 75.0])
    print()
    print(format_cdf(series, "Figure 3 (JOB): fraction of queries with >= x% improvement over Bao"))
    print()
    for technique, improvements in improvements_by_technique.items():
        mean = sum(improvements.values()) / len(improvements)
        print(f"  {technique:8s} mean improvement over Bao: {mean:6.1f}%")
    # Shape assertions: BayesQO never regresses below Bao; its CDF dominates at 0%.
    bayes_at_zero = dict(series["bayesqo"])[0.0]
    assert bayes_at_zero >= dict(series["balsa"])[0.0] - 1e-9
    assert all(value >= -1e-6 for value in improvements_by_technique["bayesqo"].values())
