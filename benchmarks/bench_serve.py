"""Plan-serving benchmark: the acceptance gates of the serving layer.

Drives a seeded Zipf/bursty query stream (with a mid-stream data-drift event)
through a :class:`~repro.serve.server.PlanServer` and gates on the three
properties a plan server must actually deliver:

* **fast path** — every repeat arrival is served from the store (>= 90% of
  repeats, and with this design exactly 100%), and the fast path invokes no
  planner, no optimizer and no executor: a server whose database is replaced
  by a poisoned stub still serves every known fingerprint.  ``served_qps``
  (store lookups per second, measured over the poisoned server) and
  ``fast_path_hit_rate`` are the headline metrics tracked by
  ``bench_trend.py``.
* **drift recovery** — the mid-stream drift event (rolled-back "past"
  snapshot -> full "future" database) regresses stored plans; the drift
  detector flags them, admission prioritizes them, and background
  re-optimization brings the drifted queries' served latency back below
  their post-drift (pre-re-optimization) level.
* **kill + resume is exact** — a server killed mid-stream and resumed from
  its persisted store serves the remaining arrivals with a trace bit-for-bit
  identical to the uninterrupted run.

``--trace PATH`` records the reference stream through a live
:class:`~repro.obs.Tracer` and exports it as a Chrome/Perfetto trace JSON
(the QPS probe runs untraced either way, so the headline is unaffected).

Run:  PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from collections import defaultdict

from repro.core.protocol import BudgetSpec
from repro.obs import NULL_TRACER, Tracer, write_chrome_trace
from repro.serve import (
    DriftEvent,
    PlanServer,
    ServeConfig,
    TrafficConfig,
    TrafficGenerator,
    drive_stream,
)
from repro.utils import get_logger
from repro.workloads.drift import rollback_to_date
from repro.workloads.stack import STACK_DATE_2017, build_stack_workload

logger = get_logger("bench")

SEED = 0
FULL_ARRIVALS = 500
SMOKE_ARRIVALS = 160
FULL_QUERIES = 24
SMOKE_QUERIES = 12
MAINTENANCE_EVERY = 25
KILL_AT_FRACTION = 0.6  # kill the resume arm at this point of the stream
QPS_PROBES = 20_000


class _PoisonedDatabase:
    """Stands in for the live database to prove fast-path purity.

    Any attribute access raises: a serve that plans, optimizes or executes
    through the server's database cannot be a pure store lookup.
    """

    def __getattr__(self, name: str):
        raise AssertionError(f"fast path touched database.{name}")


def _serve_config() -> ServeConfig:
    return ServeConfig(
        technique="bao",
        budget=BudgetSpec(max_executions=16),
        drift_factor=1.3,
        seed=SEED,
    )


def _traffic_config(arrivals: int) -> TrafficConfig:
    return TrafficConfig(
        num_arrivals=arrivals,
        zipf_alpha=1.1,
        seed=SEED,
        burst_every=120,
        burst_length=40,
        drift_events=(DriftEvent(index=arrivals // 2, cutoff=None),),
    )


def _drift_recovery(result, drift_index: int) -> dict:
    """Per-query latency before/after re-optimization, for drifted queries.

    A query counts as recovered when its mean served latency *after* its
    post-drift re-optimization is below its mean served latency *between*
    the drift event and that re-optimization.
    """
    reopt_at: dict[str, int] = {}
    for record in result.maintenance:
        if record.arrival_index >= drift_index and record.query_name not in reopt_at:
            reopt_at[record.query_name] = record.arrival_index
    serves = defaultdict(list)
    for record in result.records:
        if record.index >= drift_index and not record.timed_out:
            serves[record.query_name].append((record.index, record.latency))
    recovered, regressions = [], []
    for name, reopt_index in sorted(reopt_at.items()):
        before = [lat for idx, lat in serves[name] if idx <= reopt_index]
        after = [lat for idx, lat in serves[name] if idx > reopt_index]
        if not before or not after:
            continue
        mean_before = sum(before) / len(before)
        mean_after = sum(after) / len(after)
        regressions.append(
            {
                "query": name,
                "reopt_at": reopt_index,
                "mean_latency_post_drift": mean_before,
                "mean_latency_post_reopt": mean_after,
                "recovered": mean_after < mean_before,
            }
        )
        if mean_after < mean_before:
            recovered.append(name)
    return {
        "reoptimized_after_drift": len(reopt_at),
        "comparable": len(regressions),
        "recovered": len(recovered),
        "details": regressions,
    }


def run_benchmark(
    arrivals: int, num_queries: int, store_dir: str, trace_path: str | None = None
) -> dict:
    workload = build_stack_workload(
        scale=0.05, seed=SEED, num_templates=8, num_queries=num_queries
    )
    future = workload.database
    past = rollback_to_date(future, STACK_DATE_2017)
    config = _serve_config()
    traffic = _traffic_config(arrivals)
    generator = TrafficGenerator(workload.queries, traffic)
    drift_index = traffic.drift_events[0].index

    # ------------------------------------------------------------ arm 1: reference stream
    tracer = Tracer(capacity=262_144) if trace_path is not None else NULL_TRACER
    with PlanServer(past, config=config, workload=workload, tracer=tracer) as server:
        start = time.perf_counter()
        reference = drive_stream(
            server, generator, future, maintenance_every=MAINTENANCE_EVERY
        )
        stream_s = time.perf_counter() - start
        # Snapshot before the QPS probe below, which serves through the same
        # counters object.
        counters = server.counters.snapshot()
        if trace_path is not None:
            write_chrome_trace(tracer.spans(), trace_path, process_name="bench_serve")
            # The probe measures the untraced fast path — the headline number
            # stays comparable whether or not a trace was requested.
            server.tracer = NULL_TRACER

        # Fast-path purity + throughput: serve known fingerprints against a
        # poisoned database — any planner/optimizer/executor touch raises.
        known = [entry.query for entry in server.store.entries.values()]
        live_database = server.database
        server.database = _PoisonedDatabase()
        try:
            probe_start = time.perf_counter()
            for i in range(QPS_PROBES):
                decision = server.serve(known[i % len(known)])
                assert decision.source == "store"
            probe_s = time.perf_counter() - probe_start
        finally:
            server.database = live_database

    repeats = generator.repeat_arrivals()
    fast_path_hit_rate = counters["fast_path"] / repeats if repeats else 0.0
    drift = _drift_recovery(reference, drift_index)

    # ------------------------------------------------------------ arm 2: kill + resume
    kill_at = int(arrivals * KILL_AT_FRACTION)
    store_path = os.path.join(store_dir, "plan_store.pkl")
    with PlanServer(past, config=config, workload=workload) as victim:
        drive_stream(
            victim,
            generator,
            future,
            stop_index=kill_at,
            maintenance_every=MAINTENANCE_EVERY,
            checkpoint_path=store_path,
        )
        # The "kill": the victim object is simply abandoned here — everything
        # the resumed server knows comes from the persisted store.

    current = DriftEvent(index=drift_index).realize(future) if kill_at > drift_index else past
    with PlanServer.resume(store_path, current, config=config, workload=workload) as resumed:
        resumed_arrivals = resumed.counters.arrivals
        tail = drive_stream(
            resumed,
            generator,
            future,
            start_index=kill_at,
            maintenance_every=MAINTENANCE_EVERY,
        )

    reference_tail = [r for r in reference.records if r.index >= kill_at]
    resume_bitforbit = tail.trace() == [
        (r.index, r.query_name, r.fingerprint, r.source, r.latency, r.timed_out)
        for r in reference_tail
    ]

    return {
        "arrivals": arrivals,
        "distinct_queries": generator.distinct_queries(),
        "repeat_arrivals": repeats,
        "stream_s": stream_s,
        "counters": counters,
        "fast_path_hit_rate": fast_path_hit_rate,
        "fast_path_pure": True,  # the poisoned probe loop would have raised
        "served_qps": QPS_PROBES / probe_s if probe_s > 0 else float("inf"),
        "drift_index": drift_index,
        "drift": drift,
        "kill_at": kill_at,
        "resumed_arrivals_on_record": resumed_arrivals,
        "resume_bitforbit": resume_bitforbit,
        "maintenance_tasks": len(reference.maintenance),
        "store_bytes": os.path.getsize(store_path),
    }


def gate_failures(report: dict, smoke: bool) -> list[str]:
    failures = []
    if not smoke and report["arrivals"] < 500:
        failures.append("stream shorter than the 500-arrival gate")
    if not smoke and report["distinct_queries"] < 20:
        failures.append("stream has fewer than 20 distinct queries")
    if report["fast_path_hit_rate"] < 0.90:
        failures.append(
            f"fast-path hit rate {report['fast_path_hit_rate']:.3f} below 0.90"
        )
    if report["drift"]["comparable"] == 0:
        failures.append("no drifted query was re-optimized with serves on both sides")
    elif report["drift"]["recovered"] == 0:
        failures.append("re-optimization lowered no drifted query's served latency")
    if not report["resume_bitforbit"]:
        failures.append("resumed serve trace diverges from the uninterrupted run")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="smaller stream (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", help="write the result breakdown to PATH")
    parser.add_argument(
        "--trace", metavar="PATH", help="export the reference stream as a Chrome/Perfetto trace"
    )
    args = parser.parse_args(argv)

    arrivals = SMOKE_ARRIVALS if args.smoke else FULL_ARRIVALS
    num_queries = SMOKE_QUERIES if args.smoke else FULL_QUERIES
    with tempfile.TemporaryDirectory(prefix="bench_serve_") as store_dir:
        report = run_benchmark(arrivals, num_queries, store_dir, trace_path=args.trace)

    counters = report["counters"]
    print(
        f"plan serving @ {report['arrivals']} arrivals, "
        f"{report['distinct_queries']} distinct queries "
        f"(drift at {report['drift_index']})"
    )
    print(
        f"  fast path   {counters['fast_path']}/{report['repeat_arrivals']} repeats "
        f"({report['fast_path_hit_rate']:.1%}), {counters['misses']} first-sight misses, "
        f"{counters['planner_calls']} planner calls"
    )
    print(f"  throughput  {report['served_qps']:,.0f} serves/s (poisoned-database probe)")
    print(
        f"  maintenance {counters['optimizations']} optimizations, "
        f"{counters['maintenance_executions']} plan executions, "
        f"{counters['drift_flags']} drift flags"
    )
    drift = report["drift"]
    print(
        f"  drift       {drift['recovered']}/{drift['comparable']} re-optimized queries "
        f"recovered below post-drift latency"
    )
    for detail in drift["details"]:
        print(
            f"              {detail['query']:<14} reopt@{detail['reopt_at']:>4} "
            f"{detail['mean_latency_post_drift']:.4f}s -> "
            f"{detail['mean_latency_post_reopt']:.4f}s"
            f"{'' if detail['recovered'] else '  (not recovered)'}"
        )
    print(
        f"  resume      killed at {report['kill_at']}, store "
        f"{report['store_bytes'] / 1024:.0f} KiB, "
        f"bit-for-bit: {report['resume_bitforbit']}"
    )

    if args.trace:
        logger.info("wrote Chrome trace to %s", args.trace)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        logger.info("wrote %s", args.json)

    failures = gate_failures(report, args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
