"""Protocol-conformance suite: every registered technique through ask/tell.

Parameterized over the technique registry, these tests pin down the contract
the WorkloadSession scheduler relies on: suggest/observe round-trips with one
outstanding proposal, budget exhaustion under the shared BudgetSpec
accounting, deterministic seeding, and — for techniques with per-query RNG
state — bitwise equivalence between interleaved and sequential scheduling.
"""

from __future__ import annotations

import pytest

from repro.baselines import BaoOptimizer
from repro.core import BayesQOConfig
from repro.core.protocol import BudgetSpec, ExecutionOutcome, PlanProposal
from repro.core.registry import (
    TechniqueContext,
    get_technique,
    register_technique,
    technique_names,
)
from repro.exceptions import OptimizationError
from repro.harness import WorkloadSession, run_comparison
from repro.plans.jointree import JoinTree

ALL_TECHNIQUES = technique_names()

#: Small BayesQO configuration so protocol runs stay fast.
BAYES_CONFIG = BayesQOConfig(max_executions=6, num_candidates=32, seed=0)


def trace_signature(result):
    """Comparable summary of a trace: plans, latencies, censoring, timeouts."""
    return result.trace_signature()


def make_session(workload, schema_model, **kwargs):
    kwargs.setdefault("budget", BudgetSpec(max_executions=6))
    kwargs.setdefault("bayes_config", BAYES_CONFIG)
    return WorkloadSession(workload, schema_model=schema_model, **kwargs)


def build_optimizer(technique, workload, schema_model, seed=0):
    spec = get_technique(technique)
    context = TechniqueContext(
        database=workload.database,
        workload=workload,
        schema_model=schema_model,
        bayes_config=BAYES_CONFIG,
        seed=seed,
    )
    return spec, spec.factory(context)


# --------------------------------------------------------------------- registry
class TestRegistry:
    def test_all_expected_techniques_registered(self):
        assert set(ALL_TECHNIQUES) == {"bayesqo", "bao", "random", "balsa", "limeqo"}

    def test_unknown_technique_rejected(self):
        with pytest.raises(OptimizationError):
            get_technique("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(OptimizationError):
            register_technique("bao")(lambda context: None)

    def test_capability_flags(self):
        assert get_technique("limeqo").workload_level
        assert get_technique("bayesqo").needs_schema_model
        assert get_technique("bao").ignores_execution_cap
        assert get_technique("balsa").order_sensitive
        assert get_technique("bayesqo").predicts_improvement
        assert not get_technique("random").predicts_improvement
        assert not get_technique("random").workload_level


# ------------------------------------------------------------------ conformance
@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
@pytest.mark.slow
class TestProtocolConformance:
    def test_suggest_observe_roundtrip(self, technique, tiny_workload, tiny_schema_model):
        spec, optimizer = build_optimizer(technique, tiny_workload, tiny_schema_model)
        query = tiny_workload.queries[0]
        budget = BudgetSpec(max_executions=4)
        if spec.workload_level:
            state = optimizer.start_workload([query], budget=budget.scaled(1))
            result_of = lambda: state.results[query.name]  # noqa: E731
        else:
            state = optimizer.start(query, budget=budget)
            result_of = lambda: state.result  # noqa: E731
        assert result_of().num_executions == 0
        assert state.budget_left()

        proposal = optimizer.suggest(state)
        assert isinstance(proposal, PlanProposal)
        assert isinstance(proposal.plan, JoinTree)
        assert state.pending is proposal
        # A second suggest with a pending proposal is a protocol violation and
        # must leave the state untouched: the pending proposal survives.
        with pytest.raises(OptimizationError):
            optimizer.suggest(state)
        assert state.pending is proposal

        execution = tiny_workload.database.execute(
            proposal.query or query, proposal.plan, timeout=proposal.timeout
        )
        optimizer.observe(state, ExecutionOutcome.from_execution(execution, proposal.timeout))
        assert state.pending is None
        assert result_of().num_executions == 1
        record = result_of().trace[0]
        assert record.plan.canonical() == proposal.plan.canonical()
        assert record.timeout == proposal.timeout

    def test_budget_exhaustion(self, technique, tiny_workload, tiny_schema_model):
        spec = get_technique(technique)
        session = make_session(tiny_workload, tiny_schema_model, budget=BudgetSpec(max_executions=5))
        results = session.run(technique)
        assert set(results) == {query.name for query in tiny_workload.queries}
        if spec.ignores_execution_cap:
            # Bao's space is its 49 hint sets; only the time axis applies.
            assert all(result.num_executions <= 49 for result in results.values())
        elif spec.workload_level:
            total = sum(result.num_executions for result in results.values())
            assert total <= 5 * len(tiny_workload.queries)
        else:
            assert all(result.num_executions <= 5 for result in results.values())
        assert all(result.num_executions >= 1 for result in results.values())

    def test_deterministic_seeding(self, technique, tiny_workload, tiny_schema_model):
        first = make_session(tiny_workload, tiny_schema_model, seed=3).run(technique)
        second = make_session(tiny_workload, tiny_schema_model, seed=3).run(technique)
        for name in first:
            assert trace_signature(first[name]) == trace_signature(second[name])

    def test_time_budget_stops_early(self, technique, tiny_workload, tiny_schema_model):
        budget = BudgetSpec(max_executions=30, time_budget=1e-9)
        results = make_session(tiny_workload, tiny_schema_model, budget=budget).run(technique)
        # The first execution overshoots the tiny time budget and stops the run.
        for result in results.values():
            assert result.num_executions <= 2


# ----------------------------------------------------------------- interleaving
@pytest.mark.parametrize("technique", ["bayesqo", "random"])
@pytest.mark.slow
class TestInterleavedEquivalence:
    def test_interleaved_matches_sequential(self, technique, tiny_workload, tiny_schema_model):
        sequential = make_session(tiny_workload, tiny_schema_model, max_workers=1).run(technique)
        interleaved = make_session(
            tiny_workload, tiny_schema_model, max_workers=3, interleave=True
        ).run(technique)
        assert set(sequential) == set(interleaved)
        for name in sequential:
            assert trace_signature(sequential[name]) == trace_signature(interleaved[name])


# ---------------------------------------------------------------------- session
class TestWorkloadSession:
    def test_unknown_technique_rejected(self, tiny_workload):
        with pytest.raises(OptimizationError):
            WorkloadSession(tiny_workload).run("nope")

    def test_invalid_workers_rejected(self, tiny_workload):
        with pytest.raises(OptimizationError):
            WorkloadSession(tiny_workload, max_workers=0)

    def test_results_memoized(self, tiny_workload, tiny_schema_model):
        session = make_session(tiny_workload, tiny_schema_model)
        first = session.run("random")
        assert session.run("random") is first
        assert session.run("random", refresh=True) is not first

    def test_run_comparison_executes_bao_once(self, tiny_workload, tiny_schema_model, monkeypatch):
        starts = []
        original = BaoOptimizer.start

        def counting_start(self, query, budget=None):
            starts.append(query.name)
            return original(self, query, budget=budget)

        monkeypatch.setattr(BaoOptimizer, "start", counting_start)
        run = run_comparison(
            tiny_workload,
            tiny_workload.queries,
            BudgetSpec(max_executions=4),
            techniques=["bao", "random"],
        )
        # One Bao state per query even though Bao is both the baseline and a contender.
        assert sorted(starts) == sorted(query.name for query in tiny_workload.queries)
        assert set(run.results) == {"bao", "random"}
        assert set(run.bao_latencies) == {query.name for query in tiny_workload.queries}

    def test_limeqo_charged_like_everyone_else(self, tiny_workload, tiny_schema_model):
        # The session normalizes LimeQO's workload-level budget to the shared
        # per-query spec: scaled(len(queries)) on both axes.
        per_query = 4
        session = make_session(
            tiny_workload, tiny_schema_model, budget=BudgetSpec(max_executions=per_query)
        )
        results = session.run("limeqo")
        total = sum(result.num_executions for result in results.values())
        assert total <= per_query * len(tiny_workload.queries)

    def test_legacy_optimize_workload_matches_session(self, tiny_workload, tiny_schema_model):
        from repro.baselines import LimeQOOptimizer

        per_query = 4
        session_results = make_session(
            tiny_workload, tiny_schema_model, budget=BudgetSpec(max_executions=per_query)
        ).run("limeqo")
        legacy_results = LimeQOOptimizer(tiny_workload.database).optimize_workload(
            tiny_workload.queries, max_executions=per_query * len(tiny_workload.queries)
        )
        for name in session_results:
            assert trace_signature(session_results[name]) == trace_signature(legacy_results[name])

    def test_order_sensitive_technique_stays_sequential(self, tiny_workload, tiny_schema_model):
        # Balsa shares its RNG/model across queries, so the session must run it
        # sequentially even when interleaving is requested — and therefore
        # reproduce the sequential traces exactly.
        sequential = make_session(tiny_workload, tiny_schema_model, max_workers=1).run("balsa")
        requested_interleaved = make_session(
            tiny_workload, tiny_schema_model, max_workers=3, interleave=True
        ).run("balsa")
        for name in sequential:
            assert trace_signature(sequential[name]) == trace_signature(requested_interleaved[name])

    def test_bao_baseline_not_truncated_by_time_budget(self, tiny_workload, tiny_schema_model):
        unconstrained = make_session(tiny_workload, tiny_schema_model)
        constrained = make_session(
            tiny_workload, tiny_schema_model,
            budget=BudgetSpec(max_executions=30, time_budget=1e-9),
        )
        # The technique run respects the time budget...
        capped = constrained.run("bao")
        assert all(result.num_executions <= 2 for result in capped.values())
        # ...but the improvement baseline reflects Bao's full hint enumeration.
        assert constrained.bao_latencies() == unconstrained.bao_latencies()

    def test_rejected_suggest_leaves_bao_hints_intact(self, tiny_workload):
        # The double-suggest guard fires before any state mutation, so no
        # hint-set plan is skipped and the run still covers the full space.
        optimizer = BaoOptimizer(tiny_workload.database)
        query = tiny_workload.queries[0]
        state = optimizer.start(query)
        first = optimizer.suggest(state)
        next_hint_before = state.next_hint
        with pytest.raises(OptimizationError):
            optimizer.suggest(state)
        assert state.next_hint == next_hint_before
        execution = tiny_workload.database.execute(query, first.plan, timeout=first.timeout)
        optimizer.observe(state, ExecutionOutcome.from_execution(execution, first.timeout))
        assert optimizer.suggest(state) is not None

    def test_bayesqo_custom_initial_plan_sources(self, tiny_workload, tiny_schema_model):
        # Caller-provided initialization plans keep their source labels but
        # are still treated as the initialization phase (always observed,
        # init-timeout rule), as with the pre-refactor loop.
        from repro.core import BayesQO

        optimizer = BayesQO(tiny_workload.database, tiny_schema_model, config=BAYES_CONFIG)
        query = tiny_workload.queries[0]
        seeds = [(tiny_workload.database.plan(query), "seed:custom")]
        result = optimizer.optimize(query, initial_plans=seeds, max_executions=5)
        assert result.trace[0].source == "seed:custom"
        assert result.trace[0].timeout == 600.0

    def test_interleaved_worker_error_names_query(self, tiny_workload):
        # Regression: a failing plan execution inside the interleaved
        # scheduler used to surface as a bare future traceback from pool
        # internals; it must name the query whose execution died.
        class ExplodingDatabase:
            def __init__(self, inner, poison):
                self._inner = inner
                self._poison = poison

            def execute(self, query, plan=None, timeout=None):
                if query.name == self._poison:
                    raise RuntimeError("simulated backend crash")
                return self._inner.execute(query, plan, timeout=timeout)

            def __getattr__(self, name):
                if name.startswith("_"):
                    raise AttributeError(name)
                return getattr(self._inner, name)

        poison = tiny_workload.queries[0].name
        workload = type(tiny_workload)(
            name=tiny_workload.name,
            database=ExplodingDatabase(tiny_workload.database, poison),
            queries=tiny_workload.queries,
            max_aliases=tiny_workload.max_aliases,
        )
        with WorkloadSession(
            workload, budget=BudgetSpec(max_executions=4), max_workers=3, interleave=True
        ) as session:
            with pytest.raises(OptimizationError, match=poison):
                session.run("random")

    def test_legacy_optimize_matches_session(self, tiny_workload, tiny_schema_model):
        from repro.baselines import RandomSearch

        session_results = make_session(
            tiny_workload, tiny_schema_model, seed=1, budget=BudgetSpec(max_executions=8)
        ).run("random")
        for query in tiny_workload.queries:
            legacy = RandomSearch(tiny_workload.database, seed=1).optimize(
                query, max_executions=8
            )
            assert trace_signature(session_results[query.name]) == trace_signature(legacy)
