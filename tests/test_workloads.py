"""Tests for the workload builders, the random query sampler and drift simulation."""

import numpy as np
import pytest

from repro.db.catalog import alias_table
from repro.exceptions import QueryError
from repro.workloads import (
    RandomQuerySampler,
    STACK_DATE_2017,
    Workload,
    build_dsb_schema,
    build_imdb_schema,
    build_stack_database,
    build_stack_schema,
    deletion_fraction,
    drift_timeline,
    per_table_deletion,
    rollback_to_date,
    sample_connected_aliases,
)
from repro.workloads.dsb import build_dsb_workload
from repro.workloads.imdb import build_ceb_workload


class TestSchemas:
    def test_imdb_schema_shape(self):
        schema = build_imdb_schema()
        assert len(schema) == 14
        assert schema.has_table("title") and schema.has_table("cast_info")
        assert schema.has_index("cast_info", "movie_id")
        assert nx_connected(schema)

    def test_stack_schema_shape(self):
        schema = build_stack_schema()
        assert len(schema) == 10
        assert schema.has_table("question") and schema.has_table("so_user")
        assert nx_connected(schema)

    def test_dsb_schema_shape(self):
        schema = build_dsb_schema()
        assert len(schema) == 11
        assert schema.has_table("store_sales")
        assert nx_connected(schema)


def nx_connected(schema) -> bool:
    import networkx as nx

    return nx.is_connected(schema.reference_graph())


class TestQuerySampling:
    def test_sample_connected_aliases(self, rng):
        schema = build_imdb_schema()
        graph = schema.alias_k_graph(2)
        aliases = sample_connected_aliases(graph, 6, rng)
        assert len(aliases) == 6
        assert len(set(aliases)) == 6

    def test_sample_size_one(self, rng):
        schema = build_imdb_schema()
        graph = schema.alias_k_graph(1)
        assert len(sample_connected_aliases(graph, 1, rng)) == 1

    def test_sample_invalid_size(self, rng):
        schema = build_imdb_schema()
        with pytest.raises(QueryError):
            sample_connected_aliases(schema.alias_k_graph(1), 0, rng)

    def test_random_query_sampler(self, tiny_database):
        sampler = RandomQuerySampler(tiny_database.schema, max_aliases=2, min_tables=2, max_tables=4)
        queries = sampler.sample(10, seed=0)
        assert len(queries) == 10
        for query in queries:
            query.validate_against(tiny_database.schema)
            assert query.is_connected()
            assert 2 <= query.num_tables <= 4

    def test_sampler_deterministic(self, tiny_database):
        sampler = RandomQuerySampler(tiny_database.schema, max_aliases=1, min_tables=2, max_tables=4)
        first = [q.sql() for q in sampler.sample(5, seed=3)]
        second = [q.sql() for q in sampler.sample(5, seed=3)]
        assert first == second


class TestWorkloadBuilders:
    def test_job_workload_shape(self, job_workload_small):
        assert job_workload_small.name == "JOB"
        assert job_workload_small.num_queries == 16
        assert job_workload_small.median_joins() >= 3
        for query in job_workload_small.queries:
            query.validate_against(job_workload_small.database.schema)
            assert query.is_connected()

    def test_job_query_names_unique(self, job_workload_small):
        names = [q.name for q in job_workload_small.queries]
        assert len(names) == len(set(names))

    def test_workload_helpers(self, job_workload_small):
        assert job_workload_small.size_bytes() > 0
        first = job_workload_small.queries[0]
        assert job_workload_small.query(first.name) is first
        with pytest.raises(QueryError):
            job_workload_small.query("nope")
        assert job_workload_small.templates()

    def test_duplicate_query_names_rejected(self, job_workload_small):
        with pytest.raises(QueryError):
            Workload(
                name="dup",
                database=job_workload_small.database,
                queries=[job_workload_small.queries[0], job_workload_small.queries[0]],
            )

    def test_ceb_workload_templates(self):
        workload = build_ceb_workload(scale=0.05, seed=1, num_templates=3, queries_per_template=4)
        assert workload.num_queries == 12
        assert len(workload.templates()) == 3
        template = workload.templates()[0]
        queries = workload.queries_for_template(template)
        # All queries of a template join the same alias set.
        alias_sets = {tuple(sorted(q.aliases)) for q in queries}
        assert len(alias_sets) == 1

    def test_dsb_workload_shape(self):
        workload = build_dsb_workload(scale=0.05, seed=1, num_templates=6, queries_per_template=2)
        assert workload.num_queries == 12
        assert workload.median_joins() >= 3

    def test_aliases_reference_their_tables(self, job_workload_small):
        for query in job_workload_small.queries[:5]:
            for ref in query.table_refs:
                assert alias_table(ref.alias) == ref.table


class TestDrift:
    @pytest.fixture(scope="class")
    def stack_db(self):
        return build_stack_database(scale=0.05, seed=2)

    def test_rollback_deletes_rows(self, stack_db):
        past = rollback_to_date(stack_db, STACK_DATE_2017)
        fraction = deletion_fraction(stack_db, past)
        assert 0.0 < fraction < 0.6

    def test_rollback_respects_date_column(self, stack_db):
        past = rollback_to_date(stack_db, STACK_DATE_2017)
        assert past.relations["question"].column("creation_date").max() <= STACK_DATE_2017

    def test_rollback_preserves_referential_integrity(self, stack_db):
        past = rollback_to_date(stack_db, STACK_DATE_2017)
        for fk in stack_db.schema.foreign_keys:
            referencing = past.relations[fk.table]
            referenced = past.relations[fk.ref_table]
            if referencing.num_rows == 0:
                continue
            assert np.isin(referencing.column(fk.column), referenced.column(fk.ref_column)).all()

    def test_per_table_deletion_fractions(self, stack_db):
        past = rollback_to_date(stack_db, STACK_DATE_2017)
        fractions = per_table_deletion(stack_db, past)
        assert set(fractions) == set(stack_db.schema.table_names)
        assert all(0.0 <= fraction <= 1.0 for fraction in fractions.values())
        # Tables without a creation_date column only shrink through FK cascades.
        assert fractions["site"] == 0.0

    def test_rollback_monotone_in_cutoff(self, stack_db):
        early = rollback_to_date(stack_db, 1000)
        late = rollback_to_date(stack_db, 4000)
        assert sum(r.num_rows for r in early.relations.values()) <= sum(
            r.num_rows for r in late.relations.values()
        )

    def test_drift_timeline(self, stack_db):
        timeline = drift_timeline(stack_db, 3000, 4300, steps=3)
        assert len(timeline) == 3
        cutoffs = [cutoff for cutoff, _ in timeline]
        assert cutoffs == sorted(cutoffs)
        sizes = [sum(r.num_rows for r in snapshot.relations.values()) for _, snapshot in timeline]
        assert sizes == sorted(sizes)

    def test_queries_still_run_after_rollback(self, stack_db):
        from repro.workloads.stack import build_stack_workload

        workload = build_stack_workload(scale=0.05, seed=2, num_templates=4, num_queries=8,
                                        database=stack_db)
        past = rollback_to_date(stack_db, STACK_DATE_2017)
        query = workload.queries[0]
        result = past.execute(query, timeout=300.0)
        assert result.latency > 0
