"""Tests for the timeout selection policies (Section 4.3.1)."""

import math

import numpy as np
import pytest

from repro.bo.loop import BOEngine
from repro.core.timeout import (
    BestSeenTimeout,
    MultiplierTimeout,
    NoTimeout,
    PercentileTimeout,
    UncertaintyTimeout,
    build_timeout_policy,
)
from repro.exceptions import OptimizationError


class TestSimplePolicies:
    def test_no_timeout(self):
        assert NoTimeout().select(None, None, 1.0, [1.0, 2.0]) is None

    def test_best_seen(self):
        policy = BestSeenTimeout(fallback=99.0)
        assert policy.select(None, None, None, []) == 99.0
        assert policy.select(None, None, 2.5, [2.5, 4.0]) == 2.5

    def test_percentile(self):
        policy = PercentileTimeout(percentile=50.0, fallback=7.0)
        assert policy.select(None, None, None, []) == 7.0
        assert policy.select(None, None, 1.0, [1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_zeroth_percentile_equals_best_seen(self):
        policy = PercentileTimeout(percentile=0.0)
        latencies = [3.0, 1.5, 9.0]
        assert policy.select(None, None, 1.5, latencies) == pytest.approx(1.5)

    def test_multiplier(self):
        policy = MultiplierTimeout(multiplier=1.5)
        assert policy.select(None, None, 2.0, [2.0]) == pytest.approx(3.0)

    def test_factory(self):
        assert isinstance(build_timeout_policy("none"), NoTimeout)
        assert isinstance(build_timeout_policy("uncertainty"), UncertaintyTimeout)
        assert isinstance(build_timeout_policy("percentile"), PercentileTimeout)
        assert isinstance(build_timeout_policy("best_seen"), BestSeenTimeout)
        assert isinstance(build_timeout_policy("multiplier"), MultiplierTimeout)
        with pytest.raises(OptimizationError):
            build_timeout_policy("nope")


class TestUncertaintyPolicy:
    def make_engine(self, num_points: int = 12) -> BOEngine:
        engine = BOEngine(np.zeros(2), np.ones(2), seed=0)
        rng = np.random.default_rng(0)
        for _ in range(num_points):
            x = rng.random(2)
            value = float((x**2).sum())  # log-latency surrogate target
            engine.add_observation(x, value)
        engine.fit()
        return engine

    def test_fallback_without_best(self):
        policy = UncertaintyTimeout(fallback=42.0)
        assert policy.select(None, None, None, []) == 42.0

    def test_cap_without_enough_observations(self):
        engine = BOEngine(np.zeros(2), np.ones(2), seed=0)
        engine.add_observation(np.array([0.1, 0.1]), 0.0)
        policy = UncertaintyTimeout(max_multiplier=8.0)
        assert policy.select(engine, np.array([0.5, 0.5]), 2.0, [2.0]) == pytest.approx(16.0)

    def test_timeout_within_bounds(self):
        engine = self.make_engine()
        policy = UncertaintyTimeout(kappa=1.0, max_multiplier=16.0)
        best_latency = 1.0
        timeout = policy.select(engine, np.array([0.9, 0.9]), best_latency, [best_latency])
        assert best_latency <= timeout <= 16.0 * best_latency + 1e-6

    def test_larger_kappa_never_shrinks_timeout(self):
        engine = self.make_engine()
        candidate = np.array([0.6, 0.6])
        small = UncertaintyTimeout(kappa=0.1, max_multiplier=16.0).select(engine, candidate, 1.0, [1.0])
        large = UncertaintyTimeout(kappa=3.0, max_multiplier=16.0).select(engine, candidate, 1.0, [1.0])
        assert large >= small - 1e-9

    def test_timeout_is_positive_and_finite(self):
        engine = self.make_engine()
        policy = UncertaintyTimeout()
        timeout = policy.select(engine, np.array([0.2, 0.8]), 0.5, [0.5, 0.7])
        assert math.isfinite(timeout) and timeout > 0
