"""Tests for the timeout selection policies (Section 4.3.1)."""

import math

import numpy as np
import pytest

from repro.bo.loop import BOEngine
from repro.core.timeout import (
    BestSeenTimeout,
    MultiplierTimeout,
    NoTimeout,
    PercentileTimeout,
    UncertaintyTimeout,
    build_timeout_policy,
)
from repro.exceptions import OptimizationError


class TestSimplePolicies:
    def test_no_timeout(self):
        assert NoTimeout().select(None, None, 1.0, [1.0, 2.0]) is None

    def test_best_seen(self):
        policy = BestSeenTimeout(fallback=99.0)
        assert policy.select(None, None, None, []) == 99.0
        assert policy.select(None, None, 2.5, [2.5, 4.0]) == 2.5

    def test_percentile(self):
        policy = PercentileTimeout(percentile=50.0, fallback=7.0)
        assert policy.select(None, None, None, []) == 7.0
        assert policy.select(None, None, 1.0, [1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_zeroth_percentile_equals_best_seen(self):
        policy = PercentileTimeout(percentile=0.0)
        latencies = [3.0, 1.5, 9.0]
        assert policy.select(None, None, 1.5, latencies) == pytest.approx(1.5)

    def test_multiplier(self):
        policy = MultiplierTimeout(multiplier=1.5)
        assert policy.select(None, None, 2.0, [2.0]) == pytest.approx(3.0)

    def test_percentile_incremental_matches_numpy(self):
        """The sorted running structure must agree with a full np.percentile
        recomputation as the (append-only) latency list grows."""
        rng = np.random.default_rng(0)
        policy = PercentileTimeout(percentile=25.0)
        latencies: list[float] = []
        for _ in range(40):
            latencies.append(float(rng.exponential(2.0)))
            expected = float(np.percentile(np.asarray(latencies), 25.0))
            assert policy.select(None, None, latencies[0], latencies) == pytest.approx(expected)

    def test_percentile_rebuilds_on_shorter_list(self):
        policy = PercentileTimeout(percentile=50.0)
        assert policy.select(None, None, 1.0, [1.0, 2.0, 3.0]) == pytest.approx(2.0)
        # A new (shorter) history means a new run: the mirror must be rebuilt.
        assert policy.select(None, None, 5.0, [5.0, 7.0]) == pytest.approx(6.0)
        assert policy.select(None, None, 5.0, []) == policy.fallback
        assert policy.select(None, None, 4.0, [4.0]) == pytest.approx(4.0)

    def test_percentile_out_of_range_rejected(self):
        with pytest.raises(OptimizationError):
            PercentileTimeout(percentile=-10.0).select(None, None, 1.0, [1.0, 5.0])
        with pytest.raises(OptimizationError):
            PercentileTimeout(percentile=150.0).select(None, None, 1.0, [1.0, 5.0])

    def test_percentile_rebuilds_on_different_history_of_equal_or_longer_length(self):
        """Reusing one policy instance across runs must not mix histories,
        even when the new run's list is already longer than the consumed one."""
        policy = PercentileTimeout(percentile=50.0)
        assert policy.select(None, None, 1.0, [9.0, 10.0]) == pytest.approx(9.5)
        fresh = [1.0, 2.0, 3.0]  # different run, longer than the consumed prefix
        assert policy.select(None, None, 1.0, fresh) == pytest.approx(2.0)
        fresh.append(4.0)
        assert policy.select(None, None, 1.0, fresh) == pytest.approx(2.5)

    def test_factory(self):
        assert isinstance(build_timeout_policy("none"), NoTimeout)
        assert isinstance(build_timeout_policy("uncertainty"), UncertaintyTimeout)
        assert isinstance(build_timeout_policy("percentile"), PercentileTimeout)
        assert isinstance(build_timeout_policy("best_seen"), BestSeenTimeout)
        assert isinstance(build_timeout_policy("multiplier"), MultiplierTimeout)
        with pytest.raises(OptimizationError):
            build_timeout_policy("nope")


class TestUncertaintyPolicy:
    def make_engine(self, num_points: int = 12) -> BOEngine:
        engine = BOEngine(np.zeros(2), np.ones(2), seed=0)
        rng = np.random.default_rng(0)
        for _ in range(num_points):
            x = rng.random(2)
            value = float((x**2).sum())  # log-latency surrogate target
            engine.add_observation(x, value)
        engine.fit()
        return engine

    def test_fallback_without_best(self):
        policy = UncertaintyTimeout(fallback=42.0)
        assert policy.select(None, None, None, []) == 42.0

    def test_cap_without_enough_observations(self):
        engine = BOEngine(np.zeros(2), np.ones(2), seed=0)
        engine.add_observation(np.array([0.1, 0.1]), 0.0)
        policy = UncertaintyTimeout(max_multiplier=8.0)
        assert policy.select(engine, np.array([0.5, 0.5]), 2.0, [2.0]) == pytest.approx(16.0)

    def test_timeout_within_bounds(self):
        engine = self.make_engine()
        policy = UncertaintyTimeout(kappa=1.0, max_multiplier=16.0)
        best_latency = 1.0
        timeout = policy.select(engine, np.array([0.9, 0.9]), best_latency, [best_latency])
        assert best_latency <= timeout <= 16.0 * best_latency + 1e-6

    def test_larger_kappa_never_shrinks_timeout(self):
        engine = self.make_engine()
        candidate = np.array([0.6, 0.6])
        small = UncertaintyTimeout(kappa=0.1, max_multiplier=16.0).select(engine, candidate, 1.0, [1.0])
        large = UncertaintyTimeout(kappa=3.0, max_multiplier=16.0).select(engine, candidate, 1.0, [1.0])
        assert large >= small - 1e-9

    def test_timeout_is_positive_and_finite(self):
        engine = self.make_engine()
        policy = UncertaintyTimeout()
        timeout = policy.select(engine, np.array([0.2, 0.8]), 0.5, [0.5, 0.7])
        assert math.isfinite(timeout) and timeout > 0

    def test_batched_path_is_used_and_agrees_with_sequential(self):
        """The CensoredGP engine exposes the batched fantasize path; forcing
        the sequential bisection fallback must land on (nearly) the same
        timeout, since both probe the same fantasized LCB boundary."""
        engine = self.make_engine()
        assert engine.supports_batched_fantasize
        candidate = np.array([0.7, 0.3])
        policy = UncertaintyTimeout(kappa=1.0, max_multiplier=16.0)
        batched = policy.select(engine, candidate, 1.0, [1.0])

        low, high = math.log(1.0), math.log(16.0)
        sequential = policy._select_sequential(engine, candidate, low, high, low)
        # Grid and bisection share the same resolution over log tau.
        resolution = (high - low) / 2**policy.bisection_steps
        assert abs(math.log(batched) - math.log(sequential)) <= 2 * resolution + 1e-9

    def test_batched_grid_is_capped_for_large_bisection_steps(self):
        """A huge bisection_steps must not allocate an exponential grid."""
        engine = self.make_engine()
        policy = UncertaintyTimeout(bisection_steps=30, max_multiplier=16.0)
        timeout = policy.select(engine, np.array([0.4, 0.4]), 1.0, [1.0])
        assert 1.0 <= timeout <= 16.0 + 1e-6
