"""Shared fixtures: a tiny star schema, a small JOB-like workload and trained models.

Most unit tests use the tiny star schema (four tables, a few thousand rows) so
the whole suite stays fast; integration tests that need realistic workloads
use the session-scoped scaled-down JOB workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import VAETrainingConfig
from repro.core.optimizer import SchemaModel, train_schema_model
from repro.db.catalog import Column, ForeignKey, Schema, Table
from repro.db.datagen import ColumnSpec, DataGenerator, TableSpec
from repro.db.engine import Database
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.plans.encoding import PlanCodec
from repro.plans.vocabulary import build_vocabulary
from repro.workloads import build_job_workload
from repro.workloads.base import Workload


# ---------------------------------------------------------------------------- tiny schema
def _tiny_schema() -> Schema:
    tables = [
        Table("orders", [Column("id"), Column("customer_id"), Column("product_id"),
                         Column("quantity"), Column("order_date", "date")]),
        Table("customer", [Column("id"), Column("region"), Column("segment")]),
        Table("product", [Column("id"), Column("category"), Column("price")]),
        Table("shipment", [Column("id"), Column("order_id"), Column("carrier"),
                           Column("ship_date", "date")]),
    ]
    foreign_keys = [
        ForeignKey("orders", "customer_id", "customer", "id"),
        ForeignKey("orders", "product_id", "product", "id"),
        ForeignKey("shipment", "order_id", "orders", "id"),
    ]
    schema = Schema("tiny", tables, foreign_keys)
    schema.index_all_join_keys()
    return schema


def _tiny_specs() -> dict[str, TableSpec]:
    return {
        "orders": TableSpec(3000, {
            "quantity": ColumnSpec("categorical", cardinality=20, skew=1.2),
            "order_date": ColumnSpec("date", date_min=0, date_max=1000),
        }, fk_skew=1.3),
        "customer": TableSpec(400, {
            "region": ColumnSpec("categorical", cardinality=8, skew=1.0),
            "segment": ColumnSpec("categorical", cardinality=4, skew=0.8),
        }),
        "product": TableSpec(300, {
            "category": ColumnSpec("categorical", cardinality=10, skew=1.1),
            "price": ColumnSpec("categorical", cardinality=50, skew=1.3),
        }),
        "shipment": TableSpec(3500, {
            "carrier": ColumnSpec("categorical", cardinality=5, skew=1.0),
            "ship_date": ColumnSpec("date", date_min=0, date_max=1000),
        }, fk_skew=1.4),
    }


@pytest.fixture(scope="session")
def tiny_schema() -> Schema:
    return _tiny_schema()


@pytest.fixture(scope="session")
def tiny_database() -> Database:
    schema = _tiny_schema()
    relations = DataGenerator(schema, _tiny_specs(), seed=7).generate()
    return Database(schema, relations, seed=7)


@pytest.fixture(scope="session")
def tiny_query() -> Query:
    return Query(
        name="tiny_q1",
        table_refs=[
            TableRef("orders#1", "orders"),
            TableRef("customer#1", "customer"),
            TableRef("product#1", "product"),
            TableRef("shipment#1", "shipment"),
        ],
        join_predicates=[
            JoinPredicate("orders#1", "customer_id", "customer#1", "id"),
            JoinPredicate("orders#1", "product_id", "product#1", "id"),
            JoinPredicate("shipment#1", "order_id", "orders#1", "id"),
        ],
        filters=[
            FilterPredicate("customer#1", "region", "=", 2),
            FilterPredicate("shipment#1", "ship_date", ">=", 300),
        ],
        template="tiny_T1",
    )


@pytest.fixture(scope="session")
def tiny_three_table_query() -> Query:
    return Query(
        name="tiny_q2",
        table_refs=[
            TableRef("orders#1", "orders"),
            TableRef("customer#1", "customer"),
            TableRef("product#1", "product"),
        ],
        join_predicates=[
            JoinPredicate("orders#1", "customer_id", "customer#1", "id"),
            JoinPredicate("orders#1", "product_id", "product#1", "id"),
        ],
        filters=[FilterPredicate("product#1", "category", "=", 3)],
        template="tiny_T2",
    )


@pytest.fixture(scope="session")
def tiny_vocabulary(tiny_schema):
    return build_vocabulary(tiny_schema, max_aliases=2)


@pytest.fixture(scope="session")
def tiny_codec(tiny_vocabulary):
    return PlanCodec(tiny_vocabulary)


@pytest.fixture(scope="session")
def tiny_workload(tiny_database, tiny_query, tiny_three_table_query) -> Workload:
    return Workload(
        name="tiny",
        database=tiny_database,
        queries=[tiny_query, tiny_three_table_query],
        max_aliases=2,
        description="fixture workload",
    )


@pytest.fixture(scope="session")
def tiny_schema_model(tiny_database, tiny_workload) -> SchemaModel:
    config = VAETrainingConfig(
        latent_dim=8, embed_dim=8, hidden_dim=48, training_steps=300, corpus_queries=40,
        max_tables=4, seed=3,
    )
    return train_schema_model(tiny_database, tiny_workload.queries, config, max_aliases=2)


# ---------------------------------------------------------------------------- small JOB workload
@pytest.fixture(scope="session")
def job_workload_small() -> Workload:
    workload = build_job_workload(scale=0.12, seed=0, num_queries=16)
    return workload


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
