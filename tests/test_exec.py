"""Execution-service suite: serialization, backends, router, policies.

Covers the cross-process contract (everything that crosses a backend boundary
round-trips through pickle), the stable sha256 seeding that makes worker
processes observe identical latencies, backend/policy trace determinism
(sequential == process-pool for Random and BayesQO), and the router's
occupancy/health bookkeeping.
"""

from __future__ import annotations

import pickle
from concurrent.futures import BrokenExecutor, Future

import numpy as np
import pytest

from repro.core.config import ExecutionServiceConfig
from repro.core.protocol import BudgetSpec, ExecutionOutcome, OptimizerState, PlanProposal
from repro.core.result import OptimizationResult
from repro.db.catalog import Column, ForeignKey, Schema, Table
from repro.db.datagen import ColumnSpec, DataGenerator, TableSpec
from repro.db.engine import Database
from repro.db.executor import ExecutionResult, Executor
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.exceptions import OptimizationError
from repro.exec import (
    BudgetAwarePriority,
    ExecutionRequest,
    InlineBackend,
    MultiBackendRouter,
    ProcessPoolBackend,
    RoundRobin,
    ThreadPoolBackend,
    make_backend,
    make_policy,
)
from repro.harness import WorkloadSession
from repro.plans.jointree import JoinTree
from repro.utils.seeding import stable_digest
from repro.workloads.base import Workload


# ------------------------------------------------------------------ noisy fixture
@pytest.fixture(scope="module")
def noisy_workload() -> Workload:
    """A tiny workload with latency noise enabled.

    Noise is the part of execution that used to be process-salted; running it
    through the process backend is the real cross-process determinism check.
    """
    tables = [
        Table("orders", [Column("id"), Column("customer_id"), Column("quantity")]),
        Table("customer", [Column("id"), Column("region")]),
        Table("product", [Column("id"), Column("category"), Column("order_id")]),
    ]
    foreign_keys = [
        ForeignKey("orders", "customer_id", "customer", "id"),
        ForeignKey("product", "order_id", "orders", "id"),
    ]
    schema = Schema("noisy", tables, foreign_keys)
    schema.index_all_join_keys()
    specs = {
        "orders": TableSpec(2000, {"quantity": ColumnSpec("categorical", cardinality=10)}),
        "customer": TableSpec(300, {"region": ColumnSpec("categorical", cardinality=8)}),
        "product": TableSpec(2500, {"category": ColumnSpec("categorical", cardinality=12)}),
    }
    database = Database(
        schema, DataGenerator(schema, specs, seed=3).generate(), noise_sigma=0.25, seed=3
    )
    queries = [
        Query(
            name=f"noisy_q{i}",
            table_refs=[
                TableRef("orders#1", "orders"),
                TableRef("customer#1", "customer"),
                TableRef("product#1", "product"),
            ],
            join_predicates=[
                JoinPredicate("orders#1", "customer_id", "customer#1", "id"),
                JoinPredicate("product#1", "order_id", "orders#1", "id"),
            ],
            filters=[FilterPredicate("customer#1", "region", "=", i % 8)],
        )
        for i in range(3)
    ]
    return Workload(name="noisy", database=database, queries=queries, max_aliases=2)


def signatures(results):
    return {name: result.trace_signature() for name, result in results.items()}


# --------------------------------------------------------------- serialization
class TestCrossProcessSerialization:
    def roundtrip(self, value):
        return pickle.loads(pickle.dumps(value))

    def test_jointree_roundtrip(self):
        plan = JoinTree.left_deep(["a", "b", "c"])
        copy = self.roundtrip(plan)
        assert copy.canonical() == plan.canonical()

    def test_plan_proposal_roundtrip(self, tiny_query):
        proposal = PlanProposal(
            plan=JoinTree.left_deep(["a", "b"]),
            timeout=12.5,
            source="bo",
            query=tiny_query,
            metadata={"latent": np.arange(4.0)},
        )
        copy = self.roundtrip(proposal)
        assert copy.plan.canonical() == proposal.plan.canonical()
        assert copy.timeout == proposal.timeout
        assert copy.query.name == tiny_query.name
        np.testing.assert_array_equal(copy.metadata["latent"], proposal.metadata["latent"])

    def test_outcome_and_result_roundtrip(self):
        outcome = ExecutionOutcome(latency=3.25, timed_out=True, timeout=3.25)
        assert self.roundtrip(outcome) == outcome
        execution = ExecutionResult(
            latency=1.5, timed_out=False, output_rows=7, nodes_executed=3,
            timeout=9.0, breakdown={"scan": 0.5, "join": 1.0},
        )
        copy = self.roundtrip(execution)
        assert copy == execution

    def test_budget_spec_roundtrip(self):
        budget = BudgetSpec(max_executions=42, time_budget=7.5)
        assert self.roundtrip(budget) == budget

    def test_database_roundtrip_rebuilds_replica(self, noisy_workload):
        database = noisy_workload.database
        replica = self.roundtrip(database)
        # The replica rebuilt stats/planner/executor from constructor inputs…
        assert set(replica.relations) == set(database.relations)
        assert replica.executor.noise_sigma == database.executor.noise_sigma
        assert replica.executor.seed == database.executor.seed
        # …and executes identically (noise included: stable digest seeding).
        query = noisy_workload.queries[0]
        plan = database.plan(query)
        assert replica.plan(query).canonical() == plan.canonical()
        assert replica.execute(query, plan).latency == database.execute(query, plan).latency


# -------------------------------------------------------------- stable seeding
class TestStableSeeding:
    def test_stable_digest_is_process_stable(self):
        # Pure function of its inputs — no PYTHONHASHSEED dependence.
        import hashlib

        expected = int.from_bytes(
            hashlib.sha256("\x1f".join([repr(7), repr("abc")]).encode()).digest(), "big"
        ) % (1 << 32)
        assert stable_digest(7, "abc", bits=32) == expected
        assert stable_digest("ab", "c") != stable_digest("a", "bc")
        assert 0 <= stable_digest("x", bits=16) < (1 << 16)

    def test_latency_noise_stable_across_executors(self, noisy_workload):
        database = noisy_workload.database
        query = noisy_workload.queries[0]
        plan = database.plan(query)
        twin = Executor(
            database.schema, database.relations, database.cost_params,
            noise_sigma=database.executor.noise_sigma, seed=database.executor.seed,
        )
        assert twin.execute(query, plan).latency == database.execute(query, plan).latency


# ------------------------------------------------------------------- backends
class TestBackends:
    def test_inline_backend_matches_direct_execution(self, noisy_workload):
        database = noisy_workload.database
        query = noisy_workload.queries[0]
        plan = database.plan(query)
        backend = InlineBackend(database)
        outcome = backend.submit(ExecutionRequest(query=query, plan=plan, timeout=600.0)).result()
        direct = database.execute(query, plan, timeout=600.0)
        assert outcome == ExecutionOutcome.from_execution(direct, 600.0)
        assert backend.capacity() == 1 and backend.healthy()

    def test_inline_backend_delivers_exceptions_via_future(self, noisy_workload):
        class Exploding:
            def execute(self, query, plan=None, timeout=None):
                raise RuntimeError("boom")

        future = InlineBackend(Exploding()).submit(
            ExecutionRequest(query=noisy_workload.queries[0], plan=JoinTree.left_deep(["a", "b"]))
        )
        with pytest.raises(RuntimeError, match="boom"):
            future.result()

    def test_thread_backend_executes(self, noisy_workload):
        database = noisy_workload.database
        query = noisy_workload.queries[0]
        plan = database.plan(query)
        backend = ThreadPoolBackend(database, max_workers=2)
        try:
            outcome = backend.submit(ExecutionRequest(query=query, plan=plan)).result()
            assert outcome.latency == database.execute(query, plan).latency
        finally:
            backend.close()
        assert not backend.healthy()
        with pytest.raises(OptimizationError):
            backend.submit(ExecutionRequest(query=query, plan=plan))

    def test_make_backend_from_config(self, noisy_workload):
        database = noisy_workload.database
        assert isinstance(
            make_backend(ExecutionServiceConfig(), database), InlineBackend
        )
        thread = make_backend(
            ExecutionServiceConfig(backend="thread", max_workers=3), database
        )
        assert isinstance(thread, ThreadPoolBackend) and thread.capacity() == 3
        routed = make_backend(
            ExecutionServiceConfig(backend="inline", replicas=2), database
        )
        assert isinstance(routed, MultiBackendRouter) and routed.capacity() == 2
        with pytest.raises(OptimizationError):
            ExecutionServiceConfig(backend="quantum")
        with pytest.raises(OptimizationError):
            ExecutionServiceConfig(policy="astrology")

    def test_process_backend_executes_with_noise(self, noisy_workload):
        # The worker process has a different hash salt; identical latencies
        # prove the sha256 seeding removed the PYTHONHASHSEED dependence.
        database = noisy_workload.database
        query = noisy_workload.queries[0]
        plan = database.plan(query)
        backend = ProcessPoolBackend(database, max_workers=1, queries=noisy_workload.queries)
        try:
            outcome = backend.submit(ExecutionRequest(query=query, plan=plan)).result()
            assert outcome.latency == database.execute(query, plan).latency
        finally:
            backend.close()


# ------------------------------------------------------- trace determinism
@pytest.mark.slow
class TestProcessPoolDeterminism:
    def test_random_sequential_equals_process_pool(self, noisy_workload):
        budget = BudgetSpec(max_executions=6)
        sequential = WorkloadSession(noisy_workload, budget=budget, seed=0).run("random")
        with WorkloadSession(
            noisy_workload, budget=budget, seed=0, backend="process", max_workers=2
        ) as session:
            pooled = session.run("random")
        assert signatures(sequential) == signatures(pooled)

    def test_bayesqo_sequential_equals_process_pool(self, tiny_workload, tiny_schema_model):
        from repro.core import BayesQOConfig

        budget = BudgetSpec(max_executions=6)
        config = BayesQOConfig(max_executions=6, num_candidates=32, seed=0)
        sequential = WorkloadSession(
            tiny_workload, budget=budget, seed=0,
            schema_model=tiny_schema_model, bayes_config=config,
        ).run("bayesqo")
        with WorkloadSession(
            tiny_workload, budget=budget, seed=0,
            schema_model=tiny_schema_model, bayes_config=config,
            backend="process", max_workers=2,
        ) as session:
            pooled = session.run("bayesqo")
        assert signatures(sequential) == signatures(pooled)

    def test_budget_aware_policy_preserves_traces(self, tiny_workload, tiny_schema_model):
        from repro.core import BayesQOConfig

        budget = BudgetSpec(max_executions=6)
        config = BayesQOConfig(max_executions=6, num_candidates=32, seed=0)
        round_robin = WorkloadSession(
            tiny_workload, budget=budget, seed=0,
            schema_model=tiny_schema_model, bayes_config=config,
        ).run("bayesqo")
        with WorkloadSession(
            tiny_workload, budget=budget, seed=0,
            schema_model=tiny_schema_model, bayes_config=config,
            max_workers=2, policy="budget_aware", interleave=True,
        ) as session:
            prioritized = session.run("bayesqo")
        assert signatures(round_robin) == signatures(prioritized)


# --------------------------------------------------------------------- router
class _ScriptedBackend:
    """Backend double: scripted outcomes/failures, manual future resolution."""

    def __init__(self, name, capacity=2, fail_with=None):
        self.name = name
        self._capacity = capacity
        self._fail_with = fail_with
        self.submitted = []

    def capacity(self):
        return self._capacity

    def submit(self, request):
        self.submitted.append(request)
        future = Future()
        if self._fail_with is not None:
            future.set_exception(self._fail_with)
        else:
            future.set_result(ExecutionOutcome(latency=1.0))
        return future

    def healthy(self):
        return True

    def close(self):
        pass


def _request(query):
    return ExecutionRequest(query=query, plan=JoinTree.left_deep(["a", "b"]))


class TestMultiBackendRouter:
    def test_routes_to_least_loaded_member(self, tiny_query):
        left, right = _ScriptedBackend("left"), _ScriptedBackend("right")
        router = MultiBackendRouter([left, right])
        for _ in range(4):
            assert router.submit(_request(tiny_query)).result().latency == 1.0
        # Scripted futures resolve synchronously, so occupancy is always zero
        # at choice time and the tie-break sends everything to the first
        # member — deterministic least-loaded routing.
        assert len(left.submitted) == 4 and len(right.submitted) == 0
        statuses = {status.name: status for status in router.statuses()}
        assert statuses["left[0]"].completed == 4
        assert statuses["left[0]"].occupancy == 0
        assert router.capacity() == 4 and router.healthy()

    def test_broken_member_is_retired_and_request_retried(self, tiny_query):
        broken = _ScriptedBackend("broken", fail_with=BrokenExecutor("pool died"))
        spare = _ScriptedBackend("spare")
        router = MultiBackendRouter([broken, spare], max_failures=1)
        outcome = router.submit(_request(tiny_query)).result()
        assert outcome.latency == 1.0
        assert len(broken.submitted) == 1 and len(spare.submitted) == 1
        statuses = {status.name: status for status in router.statuses()}
        assert not statuses["broken[0]"].healthy
        assert statuses["broken[0]"].failures == 1
        # Subsequent submissions skip the retired member entirely.
        router.submit(_request(tiny_query)).result()
        assert len(broken.submitted) == 1
        assert router.capacity() == spare.capacity()

    def test_execution_errors_propagate_without_retry(self, tiny_query):
        failing = _ScriptedBackend("failing", fail_with=RuntimeError("bad plan"))
        spare = _ScriptedBackend("spare")
        router = MultiBackendRouter([failing, spare])
        with pytest.raises(RuntimeError, match="bad plan"):
            router.submit(_request(tiny_query)).result()
        # A genuine execution error is not infrastructure: nothing was
        # retried, and the member's health/failure budget is untouched.
        assert len(spare.submitted) == 0
        status = router.statuses()[0]
        assert status.healthy and status.failures == 0 and status.occupancy == 0

    def test_all_members_broken_reports_unavailable(self, tiny_query):
        broken = _ScriptedBackend("broken", fail_with=BrokenExecutor("dead"))
        router = MultiBackendRouter([broken], max_failures=1)
        with pytest.raises(OptimizationError, match="no healthy execution backend"):
            router.submit(_request(tiny_query)).result()

    def test_router_rejects_empty_membership(self):
        with pytest.raises(OptimizationError):
            MultiBackendRouter([])


# ------------------------------------------------------------------- policies
def _state(name, latencies, budget=None):
    result = OptimizationResult(query_name=name, technique="X")
    for latency in latencies:
        result.record(JoinTree.left_deep(["a", "b"]), latency, censored=False, timeout=None)
    return OptimizerState(
        query=Query(name=name, table_refs=[TableRef("a#1", "a")], join_predicates=[]),
        result=result,
        budget=budget or BudgetSpec(max_executions=10),
    )


class TestSchedulingPolicies:
    def test_round_robin_is_fifo(self):
        states = [_state("a", [1.0]), _state("b", [2.0])]
        assert RoundRobin().select(states) == 0
        with pytest.raises(OptimizationError):
            RoundRobin().select([])

    def test_budget_aware_uses_predictor(self):
        class Predictor:
            def predicted_improvement(self, state):
                return {"a": 0.1, "b": 5.0, "c": 1.0}[state.query.name]

        states = [_state("a", [1.0]), _state("b", [1.0]), _state("c", [1.0])]
        assert BudgetAwarePriority().select(states, Predictor()) == 1

    def test_budget_aware_weights_by_remaining_budget(self):
        class Predictor:
            def predicted_improvement(self, state):
                return 1.0

        # Same headroom, but "spent" has burned 8 of 10 executions: the
        # fresh state gets the slot.
        spent = _state("spent", [1.0] * 8)
        fresh = _state("fresh", [1.0])
        assert BudgetAwarePriority().select([spent, fresh], Predictor()) == 1

    def test_budget_aware_fallback_prefers_worst_incumbent(self):
        states = [_state("fast", [0.5]), _state("slow", [50.0])]
        assert BudgetAwarePriority().select(states, None) == 1
        # A state with no successful plan yet outranks everything.
        states.append(_state("unknown", []))
        assert BudgetAwarePriority().select(states, None) == 2

    def test_make_policy(self):
        assert isinstance(make_policy("round_robin"), RoundRobin)
        assert isinstance(make_policy("budget_aware"), BudgetAwarePriority)
        with pytest.raises(OptimizationError):
            make_policy("astrology")

    def test_bayesqo_predicted_improvement_shape(self, tiny_workload, tiny_schema_model):
        from repro.core import BayesQO, BayesQOConfig
        from repro.core.protocol import ExecutionOutcome as Outcome

        optimizer = BayesQO(
            tiny_workload.database, tiny_schema_model,
            config=BayesQOConfig(max_executions=6, num_candidates=32, seed=0),
        )
        state = optimizer.start(tiny_workload.queries[0], budget=BudgetSpec(max_executions=6))
        # Still initializing: infinite priority.
        assert optimizer.predicted_improvement(state) == float("inf")
        while state.init_queue:
            proposal = optimizer.suggest(state)
            execution = tiny_workload.database.execute(
                proposal.query, proposal.plan, timeout=proposal.timeout
            )
            optimizer.observe(state, Outcome.from_execution(execution, proposal.timeout))
        score = optimizer.predicted_improvement(state)
        assert np.isfinite(score) and score >= 0.0
