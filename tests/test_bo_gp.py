"""Tests for kernels, the exact GP and the censored GP."""

import numpy as np
import pytest

from repro.bo.censored import (
    censored_elbo_terms,
    expected_log_survival,
    tobit_log_likelihood,
    truncated_normal_mean,
)
from repro.bo.gp import CensoredGP, ExactGP
from repro.bo.kernels import Matern52Kernel, RBFKernel
from repro.exceptions import ModelError


class TestKernels:
    @pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
    def test_diagonal_is_outputscale(self, kernel_cls, rng):
        kernel = kernel_cls(lengthscale=0.5, outputscale=2.0)
        x = rng.standard_normal((6, 3))
        matrix = kernel(x, x)
        assert np.allclose(np.diag(matrix), 2.0)
        assert np.allclose(kernel.diag(x), 2.0)

    @pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
    def test_symmetry_and_psd(self, kernel_cls, rng):
        kernel = kernel_cls()
        x = rng.standard_normal((10, 4))
        matrix = kernel(x, x)
        assert np.allclose(matrix, matrix.T)
        eigenvalues = np.linalg.eigvalsh(matrix + 1e-9 * np.eye(10))
        assert (eigenvalues > -1e-8).all()

    @pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
    def test_decay_with_distance(self, kernel_cls):
        kernel = kernel_cls(lengthscale=1.0)
        near = kernel(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kernel(np.array([[0.0]]), np.array([[3.0]]))[0, 0]
        assert near > far

    def test_invalid_hyperparameters(self):
        with pytest.raises(ModelError):
            RBFKernel(lengthscale=-1.0)
        with pytest.raises(ModelError):
            Matern52Kernel(outputscale=0.0)

    def test_with_params(self):
        kernel = RBFKernel().with_params(2.0, 3.0)
        assert kernel.lengthscale == 2.0 and kernel.outputscale == 3.0


class TestExactGP:
    def objective(self, x):
        return np.sin(3 * x).ravel()

    def test_fit_and_interpolate(self, rng):
        x = np.linspace(0, 2, 25).reshape(-1, 1)
        y = self.objective(x)
        gp = ExactGP().fit(x, y)
        mean, std = gp.predict(x)
        assert np.max(np.abs(mean - y)) < 0.2
        assert (std >= 0).all()

    def test_uncertainty_grows_away_from_data(self, rng):
        x = np.linspace(0, 1, 15).reshape(-1, 1)
        gp = ExactGP().fit(x, self.objective(x))
        _, std_in = gp.predict(np.array([[0.5]]))
        _, std_out = gp.predict(np.array([[3.0]]))
        assert std_out[0] > std_in[0]

    def test_posterior_samples_shape_and_spread(self, rng):
        x = np.linspace(0, 1, 10).reshape(-1, 1)
        gp = ExactGP().fit(x, self.objective(x))
        samples = gp.posterior_samples(np.array([[0.2], [2.0]]), 64, rng)
        assert samples.shape == (64, 2)
        assert samples[:, 1].std() > samples[:, 0].std()

    def test_fantasize_pulls_mean(self, rng):
        x = np.linspace(0, 1, 10).reshape(-1, 1)
        gp = ExactGP().fit(x, self.objective(x))
        target = np.array([[2.0]])
        before, _ = gp.predict(target)
        after, _ = gp.fantasize(target[0], 5.0, target)
        assert after[0] > before[0]

    def test_requires_fit(self):
        with pytest.raises(ModelError):
            ExactGP().predict(np.array([[0.0]]))

    def test_zero_observations_rejected(self):
        with pytest.raises(ModelError):
            ExactGP().fit(np.zeros((0, 2)), np.zeros(0))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelError):
            ExactGP().fit(np.zeros((3, 1)), np.zeros(2))

    def test_num_observations(self, rng):
        x = rng.standard_normal((7, 2))
        gp = ExactGP().fit(x, rng.standard_normal(7))
        assert gp.num_observations == 7


class TestCensoredHelpers:
    def test_truncated_normal_mean_above_threshold(self):
        mean = truncated_normal_mean(np.array([0.0]), np.array([1.0]), np.array([1.0]))
        assert mean[0] > 1.0

    def test_truncated_normal_mean_far_below_threshold(self):
        mean = truncated_normal_mean(np.array([0.0]), np.array([1.0]), np.array([-10.0]))
        assert mean[0] == pytest.approx(0.0, abs=0.01)

    def test_tobit_likelihood_censoring_increases_likelihood_above(self):
        values = np.array([1.0])
        censored = np.array([True])
        high_mean = tobit_log_likelihood(values, censored, np.array([3.0]), np.array([1.0]))
        low_mean = tobit_log_likelihood(values, censored, np.array([-3.0]), np.array([1.0]))
        assert high_mean > low_mean

    def test_expected_log_survival_monotone_in_mean(self):
        threshold = np.array([0.0, 0.0])
        values = expected_log_survival(np.array([2.0, -2.0]), np.array([0.5, 0.5]), threshold, 0.5)
        assert values[0] > values[1]

    def test_censored_elbo_combines_terms(self):
        mu = np.array([0.0, 1.0])
        var = np.array([0.1, 0.1])
        values = np.array([0.0, 0.5])
        both = censored_elbo_terms(mu, var, values, np.array([False, True]), noise_std=0.3)
        uncensored_only = censored_elbo_terms(mu[:1], var[:1], values[:1], np.array([False]), 0.3)
        assert both < uncensored_only + 1.0  # censored term adds a (negative) log-survival


class TestCensoredGP:
    def test_censoring_raises_posterior_mean(self, rng):
        x = np.linspace(0, 1, 12).reshape(-1, 1)
        y = np.zeros(12)
        censored = np.zeros(12, dtype=bool)
        # The last three observations are "at least 2.0" (timed out at 2.0).
        y[-3:] = 2.0
        censored[-3:] = True
        gp = CensoredGP().fit(x, y, censored)
        mean, _ = gp.predict(x[-3:])
        assert (mean > 1.0).all()

    def test_no_censoring_matches_exact_gp(self, rng):
        x = np.linspace(0, 1, 10).reshape(-1, 1)
        y = np.sin(x).ravel()
        censored = np.zeros(10, dtype=bool)
        censored_gp = CensoredGP().fit(x, y, censored)
        exact = ExactGP().fit(x, y)
        mean_c, _ = censored_gp.predict(x)
        mean_e, _ = exact.predict(x)
        assert np.allclose(mean_c, mean_e, atol=0.05)

    def test_fantasize_censored(self, rng):
        x = np.linspace(0, 1, 10).reshape(-1, 1)
        gp = CensoredGP().fit(x, np.sin(x).ravel(), np.zeros(10, dtype=bool))
        point = np.array([[0.5]])
        before, _ = gp.predict(point)
        after, _ = gp.fantasize(point[0], 3.0, point)
        assert after[0] > before[0]

    def test_counts(self, rng):
        x = rng.standard_normal((6, 2))
        gp = CensoredGP().fit(x, rng.standard_normal(6), np.array([True, False, False, True, False, False]))
        assert gp.num_observations == 6
        assert gp.num_censored == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            CensoredGP().fit(np.zeros((3, 1)), np.zeros(3), np.zeros(2, dtype=bool))
