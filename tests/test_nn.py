"""Tests for the numpy neural-network substrate (gradient checks included)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn import (
    Adam,
    Embedding,
    LayerNorm,
    Linear,
    ReLU,
    SGD,
    Sequential,
    Tanh,
    clip_gradients,
    cross_entropy,
    gaussian_kl,
    log_softmax,
    mlp,
    mse,
    softmax,
)


def numeric_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(len(flat)):
        original = flat[i]
        flat[i] = original + eps
        up = f()
        flat[i] = original - eps
        down = f()
        flat[i] = original
        out[i] = (up - down) / (2 * eps)
    return grad


class TestLayers:
    def test_linear_forward_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(rng.standard_normal((5, 4)))
        assert out.shape == (5, 3)

    def test_linear_gradient_check(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss():
            return float(((layer.forward(x) - target) ** 2).sum())

        layer.forward(x)
        grad_out = 2 * (layer.forward(x) - target)
        layer.weight.zero_grad()
        layer.backward(grad_out)
        numeric = numeric_gradient(loss, layer.weight.value)
        assert np.allclose(layer.weight.grad, numeric, atol=1e-4)

    def test_linear_backward_before_forward(self, rng):
        with pytest.raises(ModelError):
            Linear(2, 2, rng).backward(np.ones((1, 2)))

    def test_embedding_lookup_and_gradient(self, rng):
        layer = Embedding(10, 4, rng)
        tokens = np.array([[1, 2], [2, 3]])
        out = layer.forward(tokens)
        assert out.shape == (2, 2, 4)
        layer.backward(np.ones_like(out))
        # Token 2 appears twice, so its gradient row sums to 2 in every column.
        assert np.allclose(layer.table.grad[2], 2.0)
        assert np.allclose(layer.table.grad[0], 0.0)

    def test_activations(self, rng):
        x = rng.standard_normal((3, 3))
        assert np.allclose(Tanh().forward(x), np.tanh(x))
        relu = ReLU()
        out = relu.forward(x)
        assert (out >= 0).all()
        grad = relu.backward(np.ones_like(x))
        assert np.array_equal(grad, (x > 0).astype(float))

    def test_layernorm_normalizes(self, rng):
        layer = LayerNorm(8)
        out = layer.forward(rng.standard_normal((5, 8)) * 10 + 3)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_sequential_collects_parameters(self, rng):
        model = Sequential(Linear(4, 8, rng), Tanh(), Linear(8, 2, rng))
        assert len(model.parameters()) == 4

    def test_mlp_shapes(self, rng):
        model = mlp(6, [16, 16], 3, rng)
        out = model.forward(rng.standard_normal((7, 6)))
        assert out.shape == (7, 3)


class TestLosses:
    def test_softmax_normalizes(self, rng):
        probs = softmax(rng.standard_normal((4, 5)))
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert np.allclose(np.exp(log_softmax(rng.standard_normal((4, 5)))).sum(axis=-1), 1.0)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, grad = cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-4
        assert np.abs(grad).max() < 1e-4

    def test_cross_entropy_gradient_direction(self):
        logits = np.zeros((1, 3))
        _, grad = cross_entropy(logits, np.array([1]))
        assert grad[0, 1] < 0 and grad[0, 0] > 0

    def test_mse(self):
        loss, grad = mse(np.array([1.0, 2.0]), np.array([1.0, 0.0]))
        assert loss == pytest.approx(2.0)
        assert grad[1] > 0

    def test_gaussian_kl_zero_at_prior(self):
        kl, grad_mu, grad_logvar = gaussian_kl(np.zeros((2, 3)), np.zeros((2, 3)))
        assert kl == pytest.approx(0.0)
        assert np.allclose(grad_mu, 0.0) and np.allclose(grad_logvar, 0.0)

    def test_gaussian_kl_positive(self, rng):
        kl, _, _ = gaussian_kl(rng.standard_normal((4, 3)), rng.standard_normal((4, 3)))
        assert kl > 0


class TestOptimizers:
    def quadratic_problem(self, rng):
        layer = Linear(1, 1, rng)
        x = np.array([[1.0], [2.0], [3.0], [-1.0]])
        y = 3.0 * x + 1.0
        return layer, x, y

    def _train(self, optimizer_cls, **kwargs):
        rng = np.random.default_rng(0)
        layer, x, y = self.quadratic_problem(rng)
        optimizer = optimizer_cls(layer.parameters(), **kwargs)
        for _ in range(400):
            optimizer.zero_grad()
            prediction = layer.forward(x)
            _, grad = mse(prediction, y)
            layer.backward(grad)
            optimizer.step()
        return float(layer.weight.value[0, 0]), float(layer.bias.value[0])

    def test_sgd_converges(self):
        weight, bias = self._train(SGD, lr=0.05, momentum=0.9)
        assert weight == pytest.approx(3.0, abs=0.1)
        assert bias == pytest.approx(1.0, abs=0.1)

    def test_adam_converges(self):
        weight, bias = self._train(Adam, lr=0.05)
        assert weight == pytest.approx(3.0, abs=0.1)
        assert bias == pytest.approx(1.0, abs=0.1)

    def test_clip_gradients(self, rng):
        layer = Linear(4, 4, rng)
        layer.weight.grad += 100.0
        layer.bias.grad += 100.0
        norm = clip_gradients(layer.parameters(), max_norm=1.0)
        assert norm > 1.0
        total = sum(float(np.sum(p.grad**2)) for p in layer.parameters())
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)
