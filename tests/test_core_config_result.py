"""Tests for BayesQO configuration and optimization-result bookkeeping."""

import pytest

from repro.core.config import BayesQOConfig, VAETrainingConfig
from repro.core.result import OptimizationResult
from repro.exceptions import OptimizationError
from repro.plans.jointree import JoinTree


class TestConfig:
    def test_defaults_valid(self):
        config = BayesQOConfig()
        assert config.initialization == "bao"
        assert config.timeout_strategy == "uncertainty"

    @pytest.mark.parametrize("field,value", [
        ("max_executions", 0),
        ("surrogate", "nope"),
        ("timeout_strategy", "nope"),
        ("initialization", "nope"),
        ("timeout_kappa", -1.0),
        ("timeout_max_multiplier", 0.5),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(OptimizationError):
            BayesQOConfig(**{field: value})

    def test_vae_training_config_defaults(self):
        config = VAETrainingConfig()
        assert config.latent_dim > 0 and config.training_steps > 0


def plan(*aliases):
    return JoinTree.left_deep(list(aliases))


class TestOptimizationResult:
    def make_result(self):
        result = OptimizationResult("q", "BayesQO")
        result.record(plan("a", "b"), 10.0, censored=False, timeout=None, source="init:bao")
        result.record(plan("b", "a"), 20.0, censored=True, timeout=20.0, source="bo")
        result.record(plan("a", "b", "c"), 4.0, censored=False, timeout=40.0, source="bo")
        return result

    def test_cost_accounting(self):
        result = self.make_result()
        # 10 (success) + 20 (timeout) + 4 (success).
        assert result.total_cost == pytest.approx(34.0)
        assert result.num_executions == 3

    def test_best_plan_and_latency(self):
        result = self.make_result()
        assert result.best_latency == pytest.approx(4.0)
        assert result.best_plan.leaf_aliases() == ["a", "b", "c"]

    def test_censored_never_wins(self):
        result = OptimizationResult("q", "X")
        result.record(plan("a", "b"), 1.0, censored=True, timeout=1.0)
        with pytest.raises(OptimizationError):
            _ = result.best_latency
        assert result.best_latency_or(123.0) == 123.0

    def test_best_latency_over_time_monotone(self):
        points = self.make_result().best_latency_over_time()
        latencies = [latency for _, latency in points]
        assert latencies == sorted(latencies, reverse=True)
        costs = [cost for cost, _ in points]
        assert costs == sorted(costs)

    def test_best_latency_at_cost(self):
        result = self.make_result()
        assert result.best_latency_at_cost(5.0) == float("inf")
        assert result.best_latency_at_cost(10.0) == pytest.approx(10.0)
        assert result.best_latency_at_cost(100.0) == pytest.approx(4.0)

    def test_improvement_over(self):
        result = self.make_result()
        assert result.improvement_over(8.0) == pytest.approx(50.0)
        assert result.improvement_over(2.0) == pytest.approx(-100.0)
        with pytest.raises(OptimizationError):
            result.improvement_over(0.0)

    def test_sources(self):
        counts = self.make_result().sources()
        assert counts == {"init:bao": 1, "bo": 2}

    def test_observed_cost_uses_timeout_for_censored(self):
        result = self.make_result()
        assert result.trace[1].observed_cost == pytest.approx(20.0)
        assert result.trace[0].observed_cost == pytest.approx(10.0)
