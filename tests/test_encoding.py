"""Tests for the plan string language: completeness, decoding validity, repair.

Property-based tests (hypothesis) check the paper's two required language
properties over arbitrary token sequences and arbitrary plans.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.catalog import Column, ForeignKey, Schema, Table
from repro.db.query import JoinPredicate, Query, TableRef
from repro.exceptions import EncodingError
from repro.plans.encoding import PlanCodec, sequence_length
from repro.plans.jointree import JOIN_OPS, JoinOp, JoinTree
from repro.plans.sampling import random_join_tree
from repro.plans.vocabulary import PAD_TOKEN, build_vocabulary, max_aliases_in_workload


def star_schema(num_dims: int = 5) -> Schema:
    tables = [Table("fact", [Column("id")] + [Column(f"d{i}_id") for i in range(num_dims)])]
    fks = []
    for i in range(num_dims):
        tables.append(Table(f"dim{i}", [Column("id")]))
        fks.append(ForeignKey("fact", f"d{i}_id", f"dim{i}", "id"))
    return Schema("star", tables, fks)


def star_query(num_dims: int = 5) -> Query:
    refs = [TableRef("fact#1", "fact")] + [TableRef(f"dim{i}#1", f"dim{i}") for i in range(num_dims)]
    joins = [JoinPredicate("fact#1", f"d{i}_id", f"dim{i}#1", "id") for i in range(num_dims)]
    return Query("star_q", refs, joins)


SCHEMA = star_schema()
QUERY = star_query()
VOCAB = build_vocabulary(SCHEMA, max_aliases=1)
CODEC = PlanCodec(VOCAB)


class TestVocabulary:
    def test_contains_pad_ops_and_aliases(self):
        assert PAD_TOKEN in VOCAB.tokens
        assert len(VOCAB.op_ids) == 3
        assert VOCAB.size == 1 + 3 + 6  # pad + ops + six tables (k=1)

    def test_token_round_trip(self):
        for token_id in range(VOCAB.size):
            assert VOCAB.id_of(VOCAB.token_of(token_id)) == token_id

    def test_op_round_trip(self):
        for op in JOIN_OPS:
            assert VOCAB.op_of(VOCAB.op_id(op)) is op
        assert VOCAB.is_op(VOCAB.op_id(JoinOp.HASH))
        assert not VOCAB.is_op(VOCAB.pad_id)

    def test_unknown_token_rejected(self):
        with pytest.raises(EncodingError):
            VOCAB.id_of("nope")
        with pytest.raises(EncodingError):
            VOCAB.token_of(10_000)

    def test_non_op_token_rejected(self):
        with pytest.raises(EncodingError):
            VOCAB.op_of(VOCAB.pad_id)

    def test_max_aliases_in_workload(self):
        query = Query(
            "q",
            [TableRef("fact#1", "fact"), TableRef("dim0#1", "dim0"), TableRef("dim0#2", "dim0")],
            [
                JoinPredicate("fact#1", "d0_id", "dim0#1", "id"),
                JoinPredicate("fact#1", "d0_id", "dim0#2", "id"),
            ],
        )
        assert max_aliases_in_workload([QUERY, query]) == 2

    def test_build_vocabulary_invalid_aliases(self):
        with pytest.raises(EncodingError):
            build_vocabulary(SCHEMA, max_aliases=0)


class TestCanonicalEncoding:
    def test_sequence_length(self):
        assert sequence_length(1) == 0
        assert sequence_length(6) == 15

    def test_encode_length(self):
        plan = JoinTree.left_deep(QUERY.aliases)
        tokens = CODEC.encode(plan, QUERY)
        assert len(tokens) == 3 * (QUERY.num_tables - 1)

    def test_round_trip_left_deep(self):
        plan = JoinTree.left_deep(QUERY.aliases, [JoinOp.MERGE] * 5)
        assert CODEC.round_trip(plan, QUERY).canonical() == plan.canonical()

    def test_round_trip_bushy(self):
        left = JoinTree.join(JoinTree.leaf("dim0#1"), JoinTree.leaf("fact#1"), JoinOp.HASH)
        right = JoinTree.join(JoinTree.leaf("dim1#1"), JoinTree.leaf("dim2#1"), JoinOp.NESTED_LOOP)
        partial = JoinTree.join(left, right, JoinOp.MERGE)
        plan = JoinTree.join(
            partial, JoinTree.join(JoinTree.leaf("dim3#1"), JoinTree.leaf("dim4#1"), JoinOp.HASH),
            JoinOp.HASH,
        )
        assert CODEC.round_trip(plan, QUERY).canonical() == plan.canonical()

    def test_padded_encoding(self):
        plan = JoinTree.left_deep(QUERY.aliases)
        padded = CODEC.encode_padded(plan, QUERY, 30)
        assert len(padded) == 30
        assert padded[-1] == VOCAB.pad_id
        assert CODEC.decode(padded, QUERY).canonical() == plan.canonical()

    def test_padded_too_short_rejected(self):
        plan = JoinTree.left_deep(QUERY.aliases)
        with pytest.raises(EncodingError):
            CODEC.encode_padded(plan, QUERY, 3)

    def test_encode_wrong_query_rejected(self):
        other = star_query(3)
        plan = JoinTree.left_deep(QUERY.aliases)
        with pytest.raises(Exception):
            CODEC.encode(plan, other)

    def test_render(self):
        plan = JoinTree.left_deep(QUERY.aliases)
        text = CODEC.render(CODEC.encode(plan, QUERY))
        assert "fact#1" in text and "<hash>" in text


class TestDecodingValidity:
    def test_empty_sequence_decodes_to_valid_plan(self):
        plan = CODEC.decode([], QUERY)
        plan.validate_for_query(QUERY)

    def test_single_table_query(self):
        query = Query("single", [TableRef("fact#1", "fact")], [])
        plan = CODEC.decode([1, 2, 3], query)
        assert plan.is_leaf and plan.alias == "fact#1"

    def test_all_pad_tokens(self):
        plan = CODEC.decode([VOCAB.pad_id] * 15, QUERY)
        plan.validate_for_query(QUERY)

    def test_truncated_sequence_completed(self):
        full = CODEC.encode(JoinTree.left_deep(QUERY.aliases), QUERY)
        plan = CODEC.decode(full[:6], QUERY)
        plan.validate_for_query(QUERY)

    def test_repair_is_deterministic(self):
        tokens = [999 % VOCAB.size, 5, 1] * 5
        first = CODEC.decode(tokens, QUERY)
        second = CODEC.decode(tokens, QUERY)
        assert first.canonical() == second.canonical()

    # ------------------------------------------------------------------ property-based tests
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=VOCAB.size - 1), min_size=0, max_size=40))
    def test_any_token_sequence_decodes_to_valid_plan(self, tokens):
        plan = CODEC.decode(tokens, QUERY)
        plan.validate_for_query(QUERY)
        assert plan.num_joins == QUERY.num_tables - 1

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_plans_round_trip(self, seed):
        plan = random_join_tree(QUERY, np.random.default_rng(seed))
        decoded = CODEC.round_trip(plan, QUERY)
        assert decoded.canonical() == plan.canonical()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=-5, max_value=2**31), min_size=3, max_size=30))
    def test_out_of_range_tokens_are_repaired(self, tokens):
        # Tokens far outside the vocabulary still decode (the repair rule indexes
        # into the valid-symbol list with the raw integer value).
        clipped = [abs(token) % (VOCAB.size * 3) for token in tokens]
        plan = CODEC.decode(clipped, QUERY)
        plan.validate_for_query(QUERY)
