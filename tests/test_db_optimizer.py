"""Tests for the default (System R style) plan optimizer."""

import pytest

from repro.db.optimizer import PlanOptimizer
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.exceptions import QueryError
from repro.plans.hints import DEFAULT_HINT_SET, HintSet
from repro.plans.jointree import JOIN_OPS, JoinOp, JoinTree


@pytest.fixture()
def optimizer(tiny_database):
    return PlanOptimizer(tiny_database.schema, tiny_database.stats)


class TestPlanning:
    def test_plan_covers_query(self, optimizer, tiny_query):
        plan = optimizer.plan(tiny_query)
        plan.validate_for_query(tiny_query)
        assert plan.num_joins == tiny_query.num_tables - 1

    def test_single_table_query(self, optimizer):
        query = Query("one", [TableRef("customer#1", "customer")], [])
        plan = optimizer.plan(query)
        assert plan.is_leaf

    def test_empty_query_rejected(self, optimizer):
        with pytest.raises(QueryError):
            optimizer.plan(Query("zero", [], []))

    def test_plan_has_no_cross_joins_for_connected_query(self, optimizer, tiny_query):
        plan = optimizer.plan(tiny_query)
        assert plan.count_cross_joins(tiny_query) == 0

    def test_plan_deterministic(self, optimizer, tiny_query):
        first = optimizer.plan(tiny_query)
        second = optimizer.plan(tiny_query)
        assert first.canonical() == second.canonical()

    def test_greedy_fallback_used_above_dp_limit(self, tiny_database, tiny_query):
        small_limit = PlanOptimizer(tiny_database.schema, tiny_database.stats, dp_table_limit=2)
        plan = small_limit.plan(tiny_query)
        plan.validate_for_query(tiny_query)
        assert plan.count_cross_joins(tiny_query) == 0

    def test_disconnected_query_planned(self, optimizer):
        query = Query(
            "disc",
            [TableRef("customer#1", "customer"), TableRef("product#1", "product")],
            [],
        )
        plan = optimizer.plan(query)
        plan.validate_for_query(query)


class TestHints:
    def test_hint_restricts_operators(self, optimizer, tiny_query):
        for op in JOIN_OPS:
            hint = HintSet(join_ops=frozenset([op]))
            plan = optimizer.plan(tiny_query, hint)
            assert set(plan.operators()) == {op}

    def test_hinted_plan_never_cheaper_than_default(self, optimizer, tiny_query):
        default_cost = optimizer.estimated_cost(tiny_query, optimizer.plan(tiny_query))
        for op in JOIN_OPS:
            hint = HintSet(join_ops=frozenset([op]))
            hinted = optimizer.plan(tiny_query, hint)
            assert optimizer.estimated_cost(tiny_query, hinted, hint) >= default_cost - 1e-9

    def test_different_hints_can_change_the_plan(self, optimizer, tiny_query):
        plans = set()
        for op in JOIN_OPS:
            hint = HintSet(join_ops=frozenset([op]))
            plans.add(optimizer.plan(tiny_query, hint).canonical())
        assert len(plans) >= 2


class TestCostEstimates:
    def test_estimated_cost_positive(self, optimizer, tiny_query):
        plan = optimizer.plan(tiny_query)
        assert optimizer.estimated_cost(tiny_query, plan) > 0

    def test_estimated_cost_validates_plan(self, optimizer, tiny_query):
        wrong = JoinTree.left_deep(["orders#1", "customer#1"])
        with pytest.raises(Exception):
            optimizer.estimated_cost(tiny_query, wrong)

    def test_default_plan_is_cost_minimal_among_alternatives(self, optimizer, tiny_query, rng):
        from repro.plans.sampling import random_join_tree

        chosen_cost = optimizer.estimated_cost(tiny_query, optimizer.plan(tiny_query))
        for _ in range(20):
            alternative = random_join_tree(tiny_query, rng)
            assert optimizer.estimated_cost(tiny_query, alternative) >= chosen_cost - 1e-9

    def test_filters_lower_estimated_cost(self, optimizer, tiny_database):
        base = Query(
            "nofilter",
            [TableRef("orders#1", "orders"), TableRef("customer#1", "customer")],
            [JoinPredicate("orders#1", "customer_id", "customer#1", "id")],
        )
        filtered = Query(
            "filter",
            base.table_refs,
            base.join_predicates,
            [FilterPredicate("customer#1", "region", "=", 1)],
        )
        plan = optimizer.plan(base)
        assert optimizer.estimated_cost(filtered, plan) <= optimizer.estimated_cost(base, plan)

    def test_scan_cost_respects_hint(self, optimizer, tiny_query):
        no_index = HintSet(scan_methods=frozenset(["seq"]))
        with_index = DEFAULT_HINT_SET
        assert optimizer._scan_cost(tiny_query, "shipment#1", no_index) >= optimizer._scan_cost(
            tiny_query, "shipment#1", with_index
        )
