"""Batched ask/tell suite: multi-proposal bookkeeping, q=1 equivalence,
out-of-order resolution, the batch acquisition layer, and the
SupportsFantasize decoupling of the timeout rule.

The load-bearing guarantees:

* ``q = 1`` through the batch-capable scheduler is bit-for-bit the
  single-proposal protocol for *every* registered technique, and techniques
  without ``supports_batch`` fall back to q=1 transparently at any requested
  batch size,
* outcomes resolve their proposals by ``proposal_id`` in any order,
* budget is charged per completed outcome and is never overshot by
  in-flight proposals,
* the uncertainty timeout rule runs against any ``SupportsFantasize``
  implementation — including fakes — with the batched and sequential
  fantasize paths agreeing.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import BalsaOptimizer, BaoOptimizer, LimeQOOptimizer, RandomSearch
from repro.bo.loop import BOEngine, BOEngineConfig
from repro.bo.svgp import SVGPConfig
from repro.core import BayesQO, BayesQOConfig
from repro.core.config import ExecutionServiceConfig
from repro.core.protocol import (
    BudgetSpec,
    ExecutionOutcome,
    drive_state,
    issue_allowance,
)
from repro.core.registry import get_technique, technique_names
from repro.core.timeout import (
    SupportsBatchedFantasize,
    SupportsFantasize,
    UncertaintyTimeout,
)
from repro.exceptions import OptimizationError
from repro.harness import WorkloadSession

ALL_TECHNIQUES = technique_names()

BAYES_CONFIG = BayesQOConfig(max_executions=6, num_candidates=32, seed=0)


def signatures(results):
    return {name: result.trace_signature() for name, result in results.items()}


def make_session(workload, schema_model, **kwargs):
    kwargs.setdefault("budget", BudgetSpec(max_executions=6))
    kwargs.setdefault("bayes_config", BAYES_CONFIG)
    return WorkloadSession(workload, schema_model=schema_model, **kwargs)


# ------------------------------------------------------------- registry flags
class TestBatchCapability:
    def test_supports_batch_flags(self):
        assert get_technique("bayesqo").supports_batch
        assert get_technique("random").supports_batch
        assert not get_technique("bao").supports_batch
        assert not get_technique("balsa").supports_batch
        assert not get_technique("limeqo").supports_batch

    def test_batch_size_config_validated(self):
        assert ExecutionServiceConfig(batch_size=4).batch_size == 4
        with pytest.raises(OptimizationError):
            ExecutionServiceConfig(batch_size=0)

    def test_session_resolves_batch_size_from_exec_config(self, tiny_workload):
        session = WorkloadSession(
            tiny_workload, exec_config=ExecutionServiceConfig(batch_size=3)
        )
        assert session.batch_size == 3
        with pytest.raises(OptimizationError):
            WorkloadSession(tiny_workload, batch_size=0)


# -------------------------------------------------------- q=1 trace identity
@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
@pytest.mark.slow
class TestQ1Equivalence:
    def test_q1_batched_scheduler_matches_sequential(
        self, technique, tiny_workload, tiny_schema_model
    ):
        sequential = make_session(tiny_workload, tiny_schema_model).run(technique)
        with make_session(
            tiny_workload, tiny_schema_model,
            max_workers=3, batch_size=1, interleave=True,
        ) as session:
            batched = session.run(technique)
        assert signatures(sequential) == signatures(batched)

    def test_unsupported_techniques_fall_back_at_any_q(
        self, technique, tiny_workload, tiny_schema_model
    ):
        # batch_size=4 must be transparent: supports_batch techniques keep
        # q plans in flight (same plans, possibly reordered observations are
        # not exercised here — the trace is still determined per query),
        # everyone else silently runs at q=1.  For techniques *without* the
        # flag the traces must be bit-for-bit sequential.
        if get_technique(technique).supports_batch:
            pytest.skip("fallback semantics only apply without supports_batch")
        sequential = make_session(tiny_workload, tiny_schema_model).run(technique)
        with make_session(
            tiny_workload, tiny_schema_model,
            max_workers=3, batch_size=4, interleave=True,
        ) as session:
            batched = session.run(technique)
        assert signatures(sequential) == signatures(batched)


class TestBatchedRuns:
    @pytest.mark.parametrize("technique", ["random", "bayesqo"])
    def test_batched_run_respects_budget_and_finds_plans(
        self, technique, tiny_workload, tiny_schema_model
    ):
        budget = 6
        with make_session(
            tiny_workload, tiny_schema_model,
            budget=BudgetSpec(max_executions=budget),
            max_workers=3, batch_size=3, interleave=True,
        ) as session:
            results = session.run(technique)
        assert set(results) == {query.name for query in tiny_workload.queries}
        for result in results.values():
            # Budget is charged per completed outcome and never overshot.
            assert 1 <= result.num_executions <= budget
            assert result.best_latency > 0

    def test_single_query_workload_interleaves_at_q_above_one(
        self, tiny_workload, tiny_schema_model
    ):
        single = type(tiny_workload)(
            name=tiny_workload.name,
            database=tiny_workload.database,
            queries=tiny_workload.queries[:1],
            max_aliases=tiny_workload.max_aliases,
        )
        name = single.queries[0].name
        sequential = make_session(single, tiny_schema_model).run("random")
        with make_session(
            single, tiny_schema_model, max_workers=3, batch_size=3, interleave=True
        ) as session:
            batched = session.run("random")
        # Same budget spent; the plan *set* may differ (timeouts are one
        # observation staler in flight), but the run completes and is full.
        assert batched[name].num_executions == sequential[name].num_executions

    def test_drive_state_batched_reference_loop(self, tiny_workload):
        optimizer = RandomSearch(tiny_workload.database, seed=1)
        query = tiny_workload.queries[0]
        state = optimizer.start(query, budget=BudgetSpec(max_executions=7))
        drive_state(optimizer, tiny_workload.database, state, q=3)
        assert state.result.num_executions == 7
        assert state.outstanding_count == 0


# ------------------------------------------------------ out-of-order observe
class TestOutOfOrderResolution:
    def _outcomes(self, database, query, proposals):
        outcomes = {}
        for proposal in proposals:
            execution = database.execute(query, proposal.plan, timeout=proposal.timeout)
            outcomes[proposal.proposal_id] = ExecutionOutcome.from_execution(
                execution, proposal.timeout, proposal_id=proposal.proposal_id
            )
        return outcomes

    def test_random_resolves_out_of_order(self, tiny_workload):
        optimizer = RandomSearch(tiny_workload.database, seed=0)
        query = tiny_workload.queries[0]
        state = optimizer.start(query, budget=BudgetSpec(max_executions=6))
        proposals = optimizer.suggest_batch(state, 3)
        assert len(proposals) == 3
        assert state.outstanding_count == 3
        ids = [proposal.proposal_id for proposal in proposals]
        assert len(set(ids)) == 3
        outcomes = self._outcomes(tiny_workload.database, query, proposals)
        # Resolve in reverse submission order.
        for proposal_id in reversed(ids):
            optimizer.observe(state, outcomes[proposal_id])
        assert state.outstanding_count == 0
        assert state.result.num_executions == 3
        # The trace is observation-ordered: last-submitted lands first.
        recorded = [record.plan.canonical() for record in state.result.trace]
        submitted = [proposal.plan.canonical() for proposal in proposals]
        assert recorded == list(reversed(submitted))

    def test_bayesqo_resolves_out_of_order(self, tiny_workload, tiny_schema_model):
        optimizer = BayesQO(tiny_workload.database, tiny_schema_model, config=BAYES_CONFIG)
        query = tiny_workload.queries[0]
        state = optimizer.start(query, budget=BudgetSpec(max_executions=8))
        # Drain initialization plans in batches, resolving in reverse.
        while state.init_queue or state.outstanding_count:
            proposals = optimizer.suggest_batch(state, 2)
            if not proposals:
                break
            outcomes = self._outcomes(tiny_workload.database, query, proposals)
            for proposal in reversed(proposals):
                optimizer.observe(state, outcomes[proposal.proposal_id])
        assert state.outstanding_count == 0
        assert state.result.num_executions >= 1
        # The BO phase also issues batches with distinct in-flight plans.
        proposals = optimizer.suggest_batch(state, 3)
        keys = [proposal.plan.canonical() for proposal in proposals]
        assert len(set(keys)) == len(keys)
        outcomes = self._outcomes(tiny_workload.database, query, proposals)
        for proposal in reversed(proposals):
            optimizer.observe(state, outcomes[proposal.proposal_id])
        assert state.outstanding_count == 0

    def test_ledger_protocol_violations(self, tiny_workload):
        optimizer = RandomSearch(tiny_workload.database, seed=0)
        query = tiny_workload.queries[0]
        state = optimizer.start(query, budget=BudgetSpec(max_executions=6))
        proposals = optimizer.suggest_batch(state, 2)
        # The one-slot ``pending`` view is ambiguous with several in flight…
        with pytest.raises(OptimizationError, match="outstanding"):
            _ = state.pending
        # …an un-keyed outcome cannot pick between them…
        with pytest.raises(OptimizationError, match="proposal_id"):
            optimizer.observe(state, ExecutionOutcome(latency=1.0))
        # …and an unknown id is rejected.
        with pytest.raises(OptimizationError, match="no outstanding proposal"):
            optimizer.observe(state, ExecutionOutcome(latency=1.0, proposal_id=999))
        # Plain suggest still refuses while proposals are outstanding.
        with pytest.raises(OptimizationError, match="pending"):
            optimizer.suggest(state)
        outcomes = {
            proposal.proposal_id: ExecutionOutcome(
                latency=1.0, proposal_id=proposal.proposal_id
            )
            for proposal in proposals
        }
        for outcome in outcomes.values():
            optimizer.observe(state, outcome)
        assert state.pending is None

    def test_issue_allowance_works_on_workload_states(self, tiny_workload):
        # Regression: the allowance must charge the same progress object the
        # budget does — workload-level states have no ``result`` attribute.
        optimizer = LimeQOOptimizer(tiny_workload.database)
        state = optimizer.start_workload(
            tiny_workload.queries, budget=BudgetSpec(max_executions=5)
        )
        assert issue_allowance(state, 3) == 3
        drive_state(optimizer, tiny_workload.database, state, q=2)
        total = sum(result.num_executions for result in state.results.values())
        assert total == 5
        assert state.outstanding_count == 0

    def test_bayesqo_top_up_before_first_observation(self, tiny_workload, tiny_schema_model):
        # Regression: a second batched ask before any outcome has been
        # observed must not try to fit an empty surrogate.
        optimizer = BayesQO(tiny_workload.database, tiny_schema_model, config=BAYES_CONFIG)
        state = optimizer.start(tiny_workload.queries[0], budget=BudgetSpec(max_executions=30))
        drained = []
        while state.init_queue:
            drained.extend(optimizer.suggest_batch(state, 4))
        top_up = optimizer.suggest_batch(state, 2)  # BO phase, zero observations
        assert state.outstanding_count == len(drained) + len(top_up)
        for proposal in drained + top_up:
            optimizer.observe(
                state, ExecutionOutcome(latency=1.0, proposal_id=proposal.proposal_id)
            )
        assert state.outstanding_count == 0

    def test_issue_allowance_never_overshoots(self, tiny_workload):
        optimizer = RandomSearch(tiny_workload.database, seed=0)
        query = tiny_workload.queries[0]
        state = optimizer.start(query, budget=BudgetSpec(max_executions=4))
        assert issue_allowance(state, 8) == 4  # capped by remaining budget
        proposals = optimizer.suggest_batch(state, issue_allowance(state, 3))
        assert len(proposals) == 3
        assert issue_allowance(state, 3) == 0  # q slots full
        assert issue_allowance(state, 8) == 1  # budget minus in-flight
        for proposal in proposals:
            optimizer.observe(
                state, ExecutionOutcome(latency=1.0, proposal_id=proposal.proposal_id)
            )
        assert issue_allowance(state, 8) == 1  # one execution left
        state.exhausted = True
        assert issue_allowance(state, 8) == 0


# ----------------------------------------------------- engine batch acquisition
class TestEngineSuggestBatch:
    def make_engine(self, num_points: int = 12, **config) -> BOEngine:
        engine = BOEngine(np.zeros(2), np.ones(2), config=BOEngineConfig(**config), seed=0)
        rng = np.random.default_rng(0)
        for _ in range(num_points):
            x = rng.random(2)
            engine.add_observation(x, float((x**2).sum()))
        engine.fit()
        return engine

    @pytest.mark.parametrize("strategy", ["fantasize", "thompson"])
    def test_suggest_batch_returns_distinct_points(self, strategy):
        engine = self.make_engine(batch_strategy=strategy, num_candidates=64)
        batch = engine.suggest_batch(4)
        assert len(batch) == 4
        stacked = np.stack(batch)
        assert len(np.unique(stacked, axis=0)) == 4

    def test_suggest_batch_q1_matches_suggest_stream(self):
        left = self.make_engine(num_candidates=64)
        right = self.make_engine(num_candidates=64)
        for _ in range(3):
            np.testing.assert_array_equal(left.suggest(), right.suggest_batch(1)[0])

    def test_suggest_batch_before_observations_is_random(self):
        engine = BOEngine(np.zeros(3), np.ones(3), seed=1)
        batch = engine.suggest_batch(3)
        assert len(batch) == 3
        assert all(point.shape == (3,) for point in batch)

    def test_invalid_q_rejected(self):
        engine = self.make_engine()
        with pytest.raises(OptimizationError):
            engine.suggest_batch(0)

    def test_svgp_subconfig_requires_svgp_surrogate(self):
        with pytest.raises(OptimizationError, match="svgp"):
            BOEngineConfig(surrogate="censored_gp", svgp=SVGPConfig())
        with pytest.raises(OptimizationError, match="svgp"):
            BOEngineConfig(svgp=SVGPConfig())  # default surrogate is censored_gp
        assert BOEngineConfig(surrogate="svgp", svgp=SVGPConfig()).svgp is not None

    def test_unknown_batch_strategy_rejected(self):
        with pytest.raises(OptimizationError):
            BOEngineConfig(batch_strategy="greedy")
        with pytest.raises(OptimizationError):
            BayesQOConfig(batch_strategy="greedy")


# -------------------------------------------------- SupportsFantasize fakes
class FakeSequentialFantasize:
    """Monotone fantasized LCB: confident once the level crosses a threshold."""

    supports_batched_fantasize = False
    num_observations = 10

    def __init__(self, threshold: float = 0.6, std: float = 0.1) -> None:
        self.threshold = threshold
        self.std = std
        self.calls = 0

    def fantasize_censored(self, x, censor_level):
        self.calls += 1
        # mean - std == best_log exactly at ``threshold``.
        return censor_level - self.threshold + self.std, self.std


class FakeBatchedFantasize(FakeSequentialFantasize):
    supports_batched_fantasize = True

    def fantasize_censored_batch(self, x, censor_levels):
        self.calls += 1
        levels = np.asarray(censor_levels, dtype=np.float64)
        return levels - self.threshold + self.std, np.full(len(levels), self.std)


class TestSupportsFantasizeDecoupling:
    def test_fakes_satisfy_the_protocol(self):
        assert isinstance(FakeSequentialFantasize(), SupportsFantasize)
        assert not isinstance(FakeSequentialFantasize(), SupportsBatchedFantasize)
        assert isinstance(FakeBatchedFantasize(), SupportsBatchedFantasize)
        assert isinstance(
            BOEngine(np.zeros(2), np.ones(2), seed=0), SupportsFantasize
        )

    def test_timeout_module_is_decoupled_from_bo(self):
        # The typed SupportsFantasize dependency replaced the BOEngine
        # import: the timeout layer must not import anything from repro.bo.
        import repro.core.timeout as timeout_module

        with open(timeout_module.__file__) as handle:
            assert "from repro.bo" not in handle.read()

    def test_batched_and_sequential_fakes_agree(self):
        policy = UncertaintyTimeout(kappa=1.0, max_multiplier=16.0, bisection_steps=10)
        best_latency = 1.0
        candidate = np.zeros(2)
        threshold = 0.6
        sequential = policy.select(
            FakeSequentialFantasize(threshold), candidate, best_latency, [best_latency]
        )
        batched = policy.select(
            FakeBatchedFantasize(threshold), candidate, best_latency, [best_latency]
        )
        resolution = math.log(16.0) / 2**policy.bisection_steps
        # Both paths bracket the same analytic boundary exp(threshold).
        assert abs(math.log(sequential) - threshold) <= 2 * resolution + 1e-9
        assert abs(math.log(batched) - threshold) <= 2 * resolution + 1e-9
        assert abs(math.log(batched) - math.log(sequential)) <= 2 * resolution + 1e-9

    def test_batched_fake_uses_one_conditioning(self):
        policy = UncertaintyTimeout(kappa=1.0, max_multiplier=16.0)
        fake = FakeBatchedFantasize()
        policy.select(fake, np.zeros(2), 1.0, [1.0])
        assert fake.calls == 1
        sequential = FakeSequentialFantasize()
        policy.select(sequential, np.zeros(2), 1.0, [1.0])
        assert sequential.calls == policy.bisection_steps + 1


# ------------------------------------------------------------- deprecations
class TestDeprecatedShims:
    def test_random_optimize_warns(self, tiny_workload):
        with pytest.warns(DeprecationWarning, match="RandomSearch.optimize"):
            RandomSearch(tiny_workload.database, seed=0).optimize(
                tiny_workload.queries[0], max_executions=1
            )

    def test_bao_optimize_warns(self, tiny_workload):
        with pytest.warns(DeprecationWarning, match="BaoOptimizer.optimize"):
            BaoOptimizer(tiny_workload.database).optimize(
                tiny_workload.queries[0], time_budget=1e-9
            )

    def test_balsa_optimize_warns(self, tiny_workload):
        with pytest.warns(DeprecationWarning, match="BalsaOptimizer.optimize"):
            BalsaOptimizer(tiny_workload.database).optimize(
                tiny_workload.queries[0], max_executions=1
            )

    def test_limeqo_optimize_workload_warns(self, tiny_workload):
        with pytest.warns(DeprecationWarning, match="LimeQOOptimizer.optimize_workload"):
            LimeQOOptimizer(tiny_workload.database).optimize_workload(
                tiny_workload.queries[:1], max_executions=1
            )

    def test_bayesqo_optimize_warns(self, tiny_workload, tiny_schema_model):
        optimizer = BayesQO(tiny_workload.database, tiny_schema_model, config=BAYES_CONFIG)
        with pytest.warns(DeprecationWarning, match="BayesQO.optimize"):
            optimizer.optimize(tiny_workload.queries[0], max_executions=1)
