"""Tests for the PlanLM cross-query initializer."""

import numpy as np
import pytest

from repro.core.result import OptimizationResult
from repro.exceptions import ModelError
from repro.llm import PlanLM, PlanLMConfig, build_finetune_dataset, query_context
from repro.plans.encoding import sequence_length
from repro.plans.sampling import random_join_trees


@pytest.fixture(scope="module")
def finetune_setup(tiny_database, tiny_vocabulary, tiny_query, tiny_three_table_query):
    """Fake optimization runs over the two fixture queries to fine-tune on."""
    max_length = sequence_length(4)
    runs = {}
    queries = {}
    for query in (tiny_query, tiny_three_table_query):
        result = OptimizationResult(query.name, "BayesQO")
        for i, plan in enumerate(random_join_trees(query, 8, seed=11)):
            execution = tiny_database.execute(query, plan, timeout=300.0)
            if execution.timed_out:
                result.record(plan, execution.latency, True, 300.0)
            else:
                result.record(plan, execution.latency, False, None)
        default = tiny_database.plan(query)
        result.record(default, tiny_database.execute(query, default).latency, False, None)
        runs[query.name] = result
        queries[query.name] = query
    examples = build_finetune_dataset(runs, queries, tiny_vocabulary, max_length, top_k=3)
    return runs, queries, examples, max_length


class TestFineTuneDataset:
    def test_examples_built(self, finetune_setup):
        _, _, examples, max_length = finetune_setup
        assert len(examples) >= 2
        for example in examples:
            assert example.tokens.shape == (max_length,)
            assert example.context.sum() >= 2  # at least two aliases in context

    def test_top_k_respected(self, finetune_setup, tiny_vocabulary):
        runs, queries, _, max_length = finetune_setup
        examples = build_finetune_dataset(runs, queries, tiny_vocabulary, max_length, top_k=1)
        per_query = {}
        for example in examples:
            per_query[example.query_name] = per_query.get(example.query_name, 0) + 1
        assert all(count == 1 for count in per_query.values())

    def test_query_context_multi_hot(self, tiny_query, tiny_vocabulary):
        context = query_context(tiny_query, tiny_vocabulary)
        assert context.sum() == len(tiny_query.aliases)
        assert set(np.unique(context)) <= {0.0, 1.0}


class TestPlanLM:
    @pytest.fixture(scope="class")
    def trained(self, finetune_setup, tiny_vocabulary):
        _, _, examples, max_length = finetune_setup
        model = PlanLM(tiny_vocabulary, max_length, PlanLMConfig(epochs=40, hidden_dim=48, seed=0))
        losses = model.fit(examples)
        return model, losses

    def test_training_reduces_loss(self, trained):
        _, losses = trained
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_generate_plans_valid(self, trained, tiny_query):
        model, _ = trained
        plans = model.generate_plans(tiny_query, 5, seed=1)
        assert len(plans) == 5
        for plan in plans:
            plan.validate_for_query(tiny_query)

    def test_generate_for_other_query(self, trained, tiny_three_table_query):
        model, _ = trained
        for plan in model.generate_plans(tiny_three_table_query, 3, seed=2):
            plan.validate_for_query(tiny_three_table_query)

    def test_generation_requires_training(self, tiny_vocabulary):
        model = PlanLM(tiny_vocabulary, sequence_length(4))
        with pytest.raises(ModelError):
            model.generate_plans(None, 1)

    def test_empty_dataset_rejected(self, tiny_vocabulary):
        model = PlanLM(tiny_vocabulary, sequence_length(4))
        with pytest.raises(ModelError):
            model.fit([])

    def test_usable_as_initialization_generator(self, trained, tiny_database, tiny_query):
        from repro.core.initialization import llm_initialization

        model, _ = trained
        plans = llm_initialization(model, tiny_query, 4)
        assert plans
        for plan, source in plans:
            assert source == "init:llm"
            plan.validate_for_query(tiny_query)
