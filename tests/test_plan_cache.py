"""Tests for the execution-memoization layer (repro.db.plan_cache).

Covers the tentpole guarantees: fingerprint identity/collision behaviour,
bit-for-bit cache-on/off equivalence (including noise, timeouts and the
materialization work cap), the censored-result reuse rules, LRU eviction
under the byte budget, adaptive batch sizing, and per-worker cache isolation
and determinism under the process-pool backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExecutionServiceConfig
from repro.core.protocol import BudgetSpec, ExecutionOutcome
from repro.db.engine import Database
from repro.db.plan_cache import (
    CacheStats,
    ExecutionCache,
    ExecutionCacheConfig,
    plan_fingerprint,
    query_fingerprint,
)
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.exceptions import OptimizationError
from repro.harness import WorkloadSession
from repro.harness.batching import BatchSizeController
from repro.plans.jointree import JoinOp
from repro.plans.sampling import random_join_trees


def _result_key(result):
    """Everything observable about an execution except the cache stats."""
    return (
        result.latency,
        result.timed_out,
        result.output_rows,
        result.nodes_executed,
        result.timeout,
        tuple(sorted(result.breakdown.items())),
    )


def _clone(database: Database, **kwargs) -> Database:
    return Database(
        database.schema,
        database.relations,
        database.cost_params,
        noise_sigma=database.executor.noise_sigma,
        seed=database.executor.seed,
        **kwargs,
    )


# --------------------------------------------------------------------- fingerprints
class TestFingerprints:
    def test_query_fingerprint_ignores_name_and_order(self, tiny_query):
        clone = Query(
            name="renamed",
            table_refs=list(reversed(tiny_query.table_refs)),
            join_predicates=[p.reversed() for p in reversed(tiny_query.join_predicates)],
            filters=list(reversed(tiny_query.filters)),
        )
        assert query_fingerprint(clone) == query_fingerprint(tiny_query)

    def test_query_fingerprint_separates_filters(self, tiny_query):
        changed = Query(
            name=tiny_query.name,
            table_refs=list(tiny_query.table_refs),
            join_predicates=list(tiny_query.join_predicates),
            filters=[FilterPredicate("customer#1", "region", "=", 3)],
        )
        assert query_fingerprint(changed) != query_fingerprint(tiny_query)

    def test_plan_fingerprint_separates_operators(self, tiny_database, tiny_query):
        plan = tiny_database.plan(tiny_query)
        flipped = plan.with_operators([JoinOp.NESTED_LOOP] * plan.num_joins)
        assert plan_fingerprint(tiny_query, plan) != plan_fingerprint(tiny_query, flipped)

    def test_same_content_query_objects_share_outcome_entries(self, tiny_database, tiny_query):
        database = _clone(tiny_database, exec_cache=True)
        plan = database.plan(tiny_query)
        first = database.execute(tiny_query, plan)
        renamed = Query(
            name="other_name",
            table_refs=list(tiny_query.table_refs),
            join_predicates=list(tiny_query.join_predicates),
            filters=list(tiny_query.filters),
        )
        second = database.execute(renamed, plan)
        assert second.cache is not None and second.cache.outcome_hit
        assert second.latency == first.latency


# --------------------------------------------------------------------- equivalence
class TestCacheEquivalence:
    def test_repeated_execution_is_replayed_and_identical(self, tiny_database, tiny_query):
        database = _clone(tiny_database, exec_cache=True)
        plan = database.plan(tiny_query)
        first = database.execute(tiny_query, plan)
        second = database.execute(tiny_query, plan)
        assert not first.cache.outcome_hit and second.cache.outcome_hit
        assert _result_key(first) == _result_key(second)

    def test_cache_on_off_bit_for_bit(self, tiny_database, tiny_query, tiny_three_table_query):
        on = _clone(tiny_database, exec_cache=True)
        off = _clone(tiny_database, exec_cache=False)
        for query in (tiny_query, tiny_three_table_query):
            for i, plan in enumerate(random_join_trees(query, 12, seed=3)):
                timeout = [None, 300.0, 0.05][i % 3]
                base = off.execute(query, plan, timeout=timeout)
                assert base.cache is None
                for _ in range(2):  # scratch-with-memo, then outcome replay
                    cached = on.execute(query, plan, timeout=timeout)
                    assert _result_key(cached) == _result_key(base)

    def test_overlapping_plans_share_subtrees(self, tiny_database, tiny_query):
        database = _clone(tiny_database, exec_cache=True)
        plan = database.plan(tiny_query)
        database.execute(tiny_query, plan)
        # Same join order, one operator flipped: every subtree below the
        # changed node replays from the memo.
        ops = plan.operators()
        ops[-1] = JoinOp.NESTED_LOOP if ops[-1] != JoinOp.NESTED_LOOP else JoinOp.HASH
        edited = plan.with_operators(ops)
        result = database.execute(tiny_query, edited)
        assert result.cache.subplan_hits > 0
        off = _clone(tiny_database, exec_cache=False)
        assert _result_key(result) == _result_key(off.execute(tiny_query, edited))

    def test_noise_identical_with_cache(self, tiny_database, tiny_query):
        on = _clone(tiny_database, exec_cache=True)
        off = _clone(tiny_database, exec_cache=False)
        on.executor.noise_sigma = off.executor.noise_sigma = 0.3
        plan = on.plan(tiny_query)
        base = off.execute(tiny_query, plan, timeout=600.0)
        assert on.execute(tiny_query, plan, timeout=600.0).latency == base.latency
        assert on.execute(tiny_query, plan, timeout=600.0).latency == base.latency

    def test_work_cap_censoring_replays(self, tiny_database, monkeypatch):
        import repro.db.executor as executor_module

        monkeypatch.setattr(executor_module, "MAX_MATERIALIZED_ROWS", 10)
        query = Query(
            "cap",
            [TableRef("orders#1", "orders"), TableRef("customer#1", "customer")],
            [JoinPredicate("orders#1", "customer_id", "customer#1", "id")],
        )
        database = _clone(tiny_database, exec_cache=True)
        plan = database.plan(query)
        first = database.execute(query, plan, timeout=600.0)
        assert first.timed_out
        second = database.execute(query, plan, timeout=600.0)
        assert second.cache.outcome_hit
        assert _result_key(first) == _result_key(second)
        # The cap fires for every finite timeout, so a *larger* timeout is
        # served too; no timeout still raises like an uncached run.
        third = database.execute(query, plan, timeout=10_000.0)
        assert third.cache.outcome_hit and third.timed_out


# --------------------------------------------------------------------- censored reuse
class TestCensoredReuse:
    def test_censored_entry_serves_smaller_timeouts_only(self, tiny_database, tiny_query):
        database = _clone(tiny_database, exec_cache=True)
        off = _clone(tiny_database, exec_cache=False)
        plan = database.plan(tiny_query)
        full_latency = off.execute(tiny_query, plan).latency
        censored = database.execute(tiny_query, plan, timeout=full_latency / 10)
        assert censored.timed_out and not censored.cache.outcome_hit
        # T' < T: replayed, censored at T'.
        tighter = database.execute(tiny_query, plan, timeout=full_latency / 20)
        assert tighter.cache.outcome_hit and tighter.timed_out
        assert tighter.latency == pytest.approx(full_latency / 20)
        # T'' > T: not servable; the fresh run completes and upgrades the entry.
        looser = database.execute(tiny_query, plan, timeout=full_latency * 2)
        assert not looser.cache.outcome_hit and not looser.timed_out
        # A completed entry serves everything, including no timeout at all.
        final = database.execute(tiny_query, plan)
        assert final.cache.outcome_hit and final.latency == full_latency

    def test_completed_entry_serves_any_timeout(self, tiny_database, tiny_query):
        database = _clone(tiny_database, exec_cache=True)
        off = _clone(tiny_database, exec_cache=False)
        plan = database.plan(tiny_query)
        full = database.execute(tiny_query, plan)
        for factor in (0.1, 0.5, 2.0):
            timeout = full.latency * factor
            replayed = database.execute(tiny_query, plan, timeout=timeout)
            base = off.execute(tiny_query, plan, timeout=timeout)
            assert replayed.cache.outcome_hit
            assert _result_key(replayed) == _result_key(base)


# --------------------------------------------------------------------- outcome interchange
class TestOutcomeInterchange:
    """export_outcomes / import_outcomes round-trips (the plan-store path)."""

    def test_export_import_roundtrip_primes_fresh_database(self, tiny_database, tiny_query):
        source = _clone(tiny_database, exec_cache=True)
        off = _clone(tiny_database, exec_cache=False)
        plan = source.plan(tiny_query)
        first = source.execute(tiny_query, plan)
        payload = source.execution_cache.export_outcomes()
        assert payload

        target = _clone(tiny_database, exec_cache=True)
        assert target.execution_cache.import_outcomes(payload) == len(payload)
        replayed = target.execute(tiny_query, plan)
        assert replayed.cache.outcome_hit
        assert replayed.latency == first.latency
        assert _result_key(replayed) == _result_key(off.execute(tiny_query, plan))

    def test_import_is_an_upsert_completed_beats_censored(self):
        key = ("k",)
        events = [(0.0, 1.0)]
        censored = ExecutionCache(ExecutionCacheConfig())
        censored.store_outcome(key, events, completed=False, observed_to=0.5,
                               output_rows=None)
        completed = ExecutionCache(ExecutionCacheConfig())
        completed.store_outcome(key, events, completed=True, observed_to=None,
                                output_rows=10)

        # Importing a completed log over a censored one upgrades the entry...
        censored.import_outcomes(completed.export_outcomes())
        exported = {k: (comp, obs) for k, _, comp, obs, _, _ in censored.export_outcomes()}
        assert exported[key] == (True, None)

        # ...and importing a censored log over a completed one changes nothing.
        completed.import_outcomes(
            [(key, events, False, 0.5, None, False)]
        )
        exported = {k: (comp, obs) for k, _, comp, obs, _, _ in completed.export_outcomes()}
        assert exported[key] == (True, None)

    def test_import_prefers_longer_censored_observation(self):
        key = ("k",)
        events = [(0.0, 1.0)]
        cache = ExecutionCache(ExecutionCacheConfig())
        cache.store_outcome(key, events, completed=False, observed_to=0.5, output_rows=None)
        # A log observed further into the execution replaces a shorter one.
        cache.import_outcomes([(key, events, False, 2.0, None, False)])
        exported = {k: (comp, obs) for k, _, comp, obs, _, _ in cache.export_outcomes()}
        assert exported[key] == (False, 2.0)
        # A shorter observation is discarded.
        cache.import_outcomes([(key, events, False, 1.0, None, False)])
        exported = {k: (comp, obs) for k, _, comp, obs, _, _ in cache.export_outcomes()}
        assert exported[key] == (False, 2.0)


# --------------------------------------------------------------------- LRU eviction
class TestSubplanLRU:
    def test_eviction_respects_byte_budget(self, tiny_database, tiny_query):
        budget = 64 * 1024
        database = _clone(
            tiny_database,
            exec_cache=ExecutionCacheConfig(max_bytes=budget, max_entry_bytes=budget),
        )
        for plan in random_join_trees(tiny_query, 20, seed=11):
            database.execute(tiny_query, plan, timeout=300.0)
        cache = database.execution_cache
        assert cache.subplan_bytes <= budget
        assert cache.counters.evictions > 0

    def test_oversized_intermediates_become_events_only(self, tiny_database, tiny_query):
        # A tiny per-entry cap forces every intermediate to events-only
        # storage; execution stays bit-for-bit identical, and replays of a
        # tight-timeout execution can still censor from the charge log alone.
        database = _clone(
            tiny_database,
            exec_cache=ExecutionCacheConfig(max_entry_bytes=0),
        )
        off = _clone(tiny_database, exec_cache=False)
        plan = database.plan(tiny_query)
        full = off.execute(tiny_query, plan)
        for timeout in (None, full.latency / 10):
            base = off.execute(tiny_query, plan, timeout=timeout)
            first = database.execute(tiny_query, plan, timeout=timeout)
            assert _result_key(first) == _result_key(base)
        cache = database.execution_cache
        assert cache.num_subplans > 0
        entries = [cache._subplans[key] for key in cache.subplan_keys()]
        assert any(entry.intermediate is None for entry in entries)
        # Only zero-byte intermediates (empty/pruned position sets) may keep
        # their arrays under a zero entry cap.
        from repro.db.plan_cache import intermediate_nbytes

        assert all(
            entry.intermediate is None or intermediate_nbytes(entry.intermediate) == 0
            for entry in entries
        )
        # A different plan sharing the censoring subtree is cut short by the
        # events-only probe — identical result, no materialization needed.
        ops = plan.operators()
        ops[-1] = JoinOp.NESTED_LOOP if ops[-1] != JoinOp.NESTED_LOOP else JoinOp.HASH
        edited = plan.with_operators(ops)
        tight = full.latency / 100
        assert _result_key(database.execute(tiny_query, edited, timeout=tight)) == _result_key(
            off.execute(tiny_query, edited, timeout=tight)
        )

    def test_lru_order_evicts_oldest(self):
        # Each entry charges 80 array bytes + 64 bytes for its (empty) event
        # log = 144; budget fits exactly three.
        cache = ExecutionCache(
            ExecutionCacheConfig(max_bytes=3 * 144, max_entry_bytes=80)
        )

        class FakeIntermediate:
            def __init__(self):
                self.positions = {"a": np.zeros(10, dtype=np.int64)}  # 80 bytes

        keys = [("q", f"p{i}") for i in range(3)]
        for key in keys:
            cache.put_subplan(key, FakeIntermediate(), [])
        # Touch the oldest so it becomes most recent, then overflow.
        assert cache.get_subplan(keys[0]) is not None
        cache.put_subplan(("q", "p3"), FakeIntermediate(), [])
        assert cache.get_subplan(keys[1]) is None  # evicted (was oldest)
        assert cache.get_subplan(keys[0]) is not None  # survived the touch

    def test_oversized_entry_is_not_cached(self):
        cache = ExecutionCache(ExecutionCacheConfig(max_bytes=16))

        class FakeIntermediate:
            positions = {"a": np.zeros(100, dtype=np.int64)}

        cache.put_subplan(("q", "big"), FakeIntermediate(), [])
        assert cache.num_subplans == 0 and cache.subplan_bytes == 0


# --------------------------------------------------------------------- config plumbing
class TestConfigPlumbing:
    def test_exec_config_validates_knobs(self):
        assert ExecutionServiceConfig(batch_size="auto").batch_size == "auto"
        with pytest.raises(OptimizationError):
            ExecutionServiceConfig(batch_size="wide")
        with pytest.raises(OptimizationError):
            ExecutionServiceConfig(batch_size=0)
        with pytest.raises(OptimizationError):
            ExecutionServiceConfig(plan_cache_bytes=-1)

    def test_plan_cache_false_disables_database_cache(self, tiny_workload):
        with WorkloadSession(
            tiny_workload,
            budget=BudgetSpec(max_executions=2),
            exec_config=ExecutionServiceConfig(plan_cache=False),
        ) as session:
            assert session.database.execution_cache is None
            session.run("random")
            assert session.cache_report.cached_executions == 0
        with WorkloadSession(
            tiny_workload,
            budget=BudgetSpec(max_executions=2),
            exec_config=ExecutionServiceConfig(plan_cache=True, plan_cache_bytes=1 << 20),
        ) as session:
            cache = session.database.execution_cache
            assert cache is not None and cache.config.max_bytes == 1 << 20
            session.run("random")
            assert session.cache_report.cached_executions > 0

    def test_default_exec_config_respects_database_cache_setting(self, tiny_workload):
        import dataclasses

        disabled_db = _clone(tiny_workload.database, exec_cache=False)
        workload = dataclasses.replace(tiny_workload, database=disabled_db)
        # plan_cache defaults to None: the database's explicit choice stands.
        with WorkloadSession(
            workload,
            budget=BudgetSpec(max_executions=2),
            exec_config=ExecutionServiceConfig(),
        ) as session:
            assert session.database.execution_cache is None
        # Reconfiguring to an equivalent config keeps the warm cache object.
        cached_db = _clone(tiny_workload.database, exec_cache=True)
        before = cached_db.execution_cache
        cached_db.set_execution_cache(cached_db.exec_cache_config)
        assert cached_db.execution_cache is before

    def test_outcome_carries_cache_stats(self, tiny_database, tiny_query):
        database = _clone(tiny_database, exec_cache=True)
        plan = database.plan(tiny_query)
        database.execute(tiny_query, plan)
        outcome = ExecutionOutcome.from_execution(database.execute(tiny_query, plan))
        assert isinstance(outcome.cache, CacheStats) and outcome.cache.outcome_hit

    def test_warmup_primes_subplan_memo(self, tiny_database, tiny_query):
        database = _clone(tiny_database, exec_cache=True)
        database.warmup([tiny_query])
        assert database.execution_cache.num_subplans > 0
        # The first "real" execution of the default plan is already a replay.
        result = database.execute(tiny_query, database.plan(tiny_query))
        assert result.cache.outcome_hit

    def test_pickle_ships_config_not_state(self, tiny_database, tiny_query):
        import pickle

        database = _clone(
            tiny_database, exec_cache=ExecutionCacheConfig(max_bytes=12345)
        )
        database.execute(tiny_query, database.plan(tiny_query))
        clone = pickle.loads(pickle.dumps(database))
        assert clone.exec_cache_config.max_bytes == 12345
        assert clone.execution_cache.num_outcomes == 0  # fresh cache
        assert clone.execution_cache is not database.execution_cache


# --------------------------------------------------------------------- process pool
@pytest.mark.slow
class TestProcessPoolIsolation:
    def test_process_traces_match_inline_and_cache_off(self, tiny_workload):
        def run(**kwargs):
            with WorkloadSession(
                tiny_workload, budget=BudgetSpec(max_executions=6), seed=0, **kwargs
            ) as session:
                return session.run("random"), session.cache_report

        base, base_report = run(exec_config=ExecutionServiceConfig(plan_cache=False))
        cached, cached_report = run()
        pooled, pooled_report = run(
            exec_config=ExecutionServiceConfig(backend="process", max_workers=2)
        )
        for name in base:
            assert base[name].trace_signature() == cached[name].trace_signature()
            assert base[name].trace_signature() == pooled[name].trace_signature()
        assert base_report.cached_executions == 0
        assert cached_report.cached_executions == cached_report.executions > 0
        # Worker caches are private: their stats still reach the scheduler
        # through the outcomes.
        assert pooled_report.cached_executions == pooled_report.executions > 0


# --------------------------------------------------------------------- batch controller
class TestBatchSizeController:
    def test_widen_on_persistent_starvation(self):
        controller = BatchSizeController(max_q=4, widen_patience=2)
        controller.record_round(idle_slots=3, starved=True)
        assert controller.q == 1
        controller.record_round(idle_slots=3, starved=True)
        assert controller.q == 2
        # A non-starved round resets the patience counter.
        controller.record_round(idle_slots=0, starved=False)
        controller.record_round(idle_slots=2, starved=True)
        assert controller.q == 2

    def test_narrow_on_stall_and_clamp(self):
        controller = BatchSizeController(max_q=3, widen_patience=1, stall_window=4)
        for _ in range(5):
            controller.record_round(idle_slots=1, starved=True)
        assert controller.q == 3  # clamped at max_q
        for _ in range(4):
            controller.record_outcome(improved=False)
        assert controller.q == 2
        # An improvement inside the window prevents further narrowing.
        controller.record_outcome(improved=True)
        for _ in range(3):
            controller.record_outcome(improved=False)
        assert controller.q == 2

    def test_never_below_min_q(self):
        controller = BatchSizeController(max_q=2, stall_window=2)
        for _ in range(10):
            controller.record_outcome(improved=False)
        assert controller.q == 1

    def test_validation(self):
        with pytest.raises(OptimizationError):
            BatchSizeController(max_q=0)
        with pytest.raises(OptimizationError):
            BatchSizeController(max_q=2, min_q=3)

    def test_session_rejects_bad_auto_string(self, tiny_workload):
        with pytest.raises(OptimizationError):
            WorkloadSession(tiny_workload, batch_size="wide")

    def test_auto_batch_session_runs(self, tiny_workload):
        with WorkloadSession(
            tiny_workload,
            queries=[tiny_workload.queries[0]],
            budget=BudgetSpec(max_executions=8),
            seed=0,
            exec_config=ExecutionServiceConfig(
                backend="thread", max_workers=4, batch_size="auto"
            ),
        ) as session:
            results = session.run("random")
        result = results[tiny_workload.queries[0].name]
        assert result.num_executions == 8
