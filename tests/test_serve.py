"""Plan serving: store persistence, admission triage, server semantics, streams."""

from __future__ import annotations

import dataclasses
import os
import pickle

import pytest

from repro.core import BayesQO, BayesQOConfig, reoptimize
from repro.core.protocol import BudgetSpec
from repro.exceptions import OptimizationError
from repro.harness.checkpoint import atomic_pickle_save
from repro.serve import (
    STORE_FORMAT_VERSION,
    AdmissionConfig,
    AdmissionPolicy,
    DriftEvent,
    PlanServer,
    PlanStore,
    ServeConfig,
    StoredObservation,
    StoreEntry,
    StoreFormatError,
    TrafficConfig,
    TrafficGenerator,
    data_signature,
    drive_stream,
)
from repro.workloads.drift import rollback_to_date


def _serve_config(**overrides) -> ServeConfig:
    defaults = dict(
        technique="bao",
        budget=BudgetSpec(max_executions=6),
        drift_factor=1.3,
        seed=0,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


# --------------------------------------------------------------------- store
class TestPlanStore:
    def test_fingerprint_keyed_lookup(self, tiny_database, tiny_query, tiny_three_table_query):
        store = PlanStore()
        entry = store.ensure(tiny_query)
        assert store.get(tiny_query) is entry
        assert tiny_query in store
        assert tiny_three_table_query not in store
        # Same content under a different name shares the entry.
        renamed = dataclasses.replace(tiny_query, name="other_name")
        assert store.get(renamed) is entry
        assert len(store) == 1

    def test_roundtrip(self, tmp_path, tiny_database, tiny_query):
        store = PlanStore(observation_window=8)
        entry = store.ensure(tiny_query)
        entry.best_plan = tiny_database.plan(tiny_query)
        entry.recorded_latency = 0.5
        entry.optimized = True
        entry.observe(0.4)
        entry.history.append(
            StoredObservation(plan=entry.best_plan, latency=0.5, censored=False,
                              timeout=None, source="bo")
        )
        store.server_state = {"arrivals": 7}
        path = os.path.join(tmp_path, "store.pkl")
        store.save(path)

        loaded = PlanStore.load(path)
        assert loaded is not None
        assert loaded.observation_window == 8
        restored = loaded.get(tiny_query)
        assert restored.best_plan.canonical() == entry.best_plan.canonical()
        assert restored.recorded_latency == 0.5
        assert restored.optimized
        assert list(restored.observed) == [0.4]
        assert len(restored.history) == 1
        assert loaded.server_state == {"arrivals": 7}

    def test_missing_and_corrupt_load_as_none(self, tmp_path):
        missing = os.path.join(tmp_path, "nope.pkl")
        assert PlanStore.load(missing) is None
        corrupt = os.path.join(tmp_path, "corrupt.pkl")
        with open(corrupt, "wb") as handle:
            handle.write(b"not a pickle")
        assert PlanStore.load(corrupt) is None
        # A pickle that is not a store payload is also "no store".
        other = os.path.join(tmp_path, "other.pkl")
        atomic_pickle_save(other, {"format": "something.else"})
        assert PlanStore.load(other) is None

    def test_version_mismatch_fails_loudly(self, tmp_path, tiny_query):
        store = PlanStore()
        store.ensure(tiny_query)
        path = os.path.join(tmp_path, "store.pkl")
        store.save(path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        assert payload["version"] == STORE_FORMAT_VERSION
        payload["version"] = STORE_FORMAT_VERSION + 1
        atomic_pickle_save(path, payload)
        with pytest.raises(StoreFormatError):
            PlanStore.load(path)

    def test_cache_sync_and_prime(self, tmp_path, tiny_database, tiny_query):
        database = tiny_database.snapshot()
        plan = database.plan(tiny_query)
        first = database.execute(tiny_query, plan, timeout=600.0)
        store = PlanStore()
        assert store.sync_cache(database) > 0

        path = os.path.join(tmp_path, "store.pkl")
        store.save(path)
        loaded = PlanStore.load(path)

        fresh = tiny_database.snapshot()  # same data, empty cache
        assert fresh.execution_cache.export_outcomes() == []
        assert loaded.prime(fresh) > 0
        assert len(fresh.execution_cache.export_outcomes()) > 0
        replay = fresh.execute(tiny_query, plan, timeout=600.0)
        assert replay.latency == first.latency

    def test_fastest_history_plans(self, tiny_database, tiny_query, tiny_three_table_query):
        best = tiny_database.plan(tiny_query)
        other = tiny_database.plan(tiny_three_table_query)
        entry = StoreEntry(fingerprint=("fp",), query=tiny_query, best_plan=best)
        entry.history = [
            StoredObservation(plan=best, latency=0.1, censored=False, timeout=None, source="bo"),
            StoredObservation(plan=other, latency=0.3, censored=False, timeout=None, source="bo"),
            StoredObservation(plan=other, latency=0.2, censored=False, timeout=None, source="bo"),
            StoredObservation(plan=other, latency=0.05, censored=True, timeout=0.05, source="bo"),
        ]
        plans = entry.fastest_history_plans(4)
        # The incumbent and censored runs are excluded; duplicates collapse.
        assert [plan.canonical() for plan in plans] == [other.canonical()]

    def test_observed_median(self, tiny_query):
        entry = StoreEntry(fingerprint=("fp",), query=tiny_query)
        assert entry.observed_median() is None
        entry.observe(3.0)
        entry.observe(1.0)
        assert entry.observed_median() == pytest.approx(2.0)
        entry.observe(10.0)
        assert entry.observed_median() == pytest.approx(3.0)


# --------------------------------------------------------------------- admission
class TestAdmission:
    def test_popularity_ranks_unseen(self):
        policy = AdmissionPolicy(config=AdmissionConfig(min_arrivals=2, max_tasks_per_cycle=4))
        for _ in range(5):
            policy.note_arrival(("hot",), optimized=False)
        for _ in range(2):
            policy.note_arrival(("warm",), optimized=False)
        policy.note_arrival(("once",), optimized=False)
        tasks = policy.triage()
        assert [task.fingerprint for task in tasks] == [("hot",), ("warm",)]
        assert all(task.reason == "unseen" for task in tasks)

    def test_regression_outranks_unseen(self):
        policy = AdmissionPolicy(config=AdmissionConfig(min_arrivals=2, cooldown_arrivals=0))
        for _ in range(3):
            policy.note_arrival(("fresh",), optimized=False)
            policy.note_arrival(("drifted",), optimized=True)
        policy.flag_regression(("drifted",), severity=2.0)
        tasks = policy.triage()
        assert tasks[0].fingerprint == ("drifted",)
        assert tasks[0].reason == "regressed"

    def test_slo_pressure_admits_optimized_entries(self):
        policy = AdmissionPolicy(config=AdmissionConfig(min_arrivals=2, cooldown_arrivals=0))
        for _ in range(4):
            policy.note_arrival(("slow",), optimized=True)
            policy.note_latency(("slow",), slo_violated=True)
        tasks = policy.triage()
        assert tasks[0].fingerprint == ("slow",)
        assert tasks[0].reason == "slo"

    def test_cooldown_and_reset(self):
        policy = AdmissionPolicy(config=AdmissionConfig(min_arrivals=1, cooldown_arrivals=3))
        for _ in range(4):
            policy.note_arrival(("q",), optimized=False)
        assert policy.triage()
        policy.note_optimized(("q",))
        # Inside the cooldown nothing is admitted, even with a fresh signal.
        policy.note_arrival(("q",), optimized=True)
        policy.flag_regression(("q",), severity=3.0)
        assert policy.triage() == []
        for _ in range(3):
            policy.note_arrival(("q",), optimized=True)
        tasks = policy.triage()
        assert tasks and tasks[0].reason == "regressed"

    def test_deterministic_tie_break(self):
        policy = AdmissionPolicy(config=AdmissionConfig(min_arrivals=1, max_tasks_per_cycle=8))
        for name in ("b", "a", "c"):
            policy.note_arrival((name,), optimized=False)
        tasks = policy.triage()
        # Equal scores: first-arrival order wins, not lexicographic order.
        assert [task.fingerprint for task in tasks] == [("b",), ("a",), ("c",)]

    def test_validation(self):
        with pytest.raises(OptimizationError):
            AdmissionConfig(max_tasks_per_cycle=0)
        with pytest.raises(OptimizationError):
            AdmissionConfig(min_arrivals=0)


# --------------------------------------------------------------------- server
class _PoisonedDatabase:
    def __getattr__(self, name: str):
        raise AssertionError(f"fast path touched database.{name}")


class TestPlanServer:
    def test_miss_promotes_then_fast_path(self, tiny_database, tiny_query):
        server = PlanServer(tiny_database.snapshot(), config=_serve_config())
        first = server.serve(tiny_query)
        assert first.source == "default"
        second = server.serve(tiny_query)
        assert second.source == "store"
        assert second.plan.canonical() == first.plan.canonical()
        assert server.counters.misses == 1
        assert server.counters.fast_path == 1
        assert server.counters.planner_calls == 1

    def test_fast_path_never_touches_database(self, tiny_database, tiny_query):
        server = PlanServer(tiny_database.snapshot(), config=_serve_config())
        server.serve(tiny_query)
        server.database = _PoisonedDatabase()
        decision = server.serve(tiny_query)
        assert decision.source == "store"

    def test_report_flags_drift(self, tiny_database, tiny_query):
        server = PlanServer(tiny_database.snapshot(), config=_serve_config(drift_factor=1.5))
        decision = server.serve(tiny_query)
        server.report(decision, 1.0)  # becomes the drift baseline
        assert server.store.get(tiny_query).recorded_latency == 1.0
        server.report(decision, 1.2)  # within tolerance
        assert server.counters.drift_flags == 0
        server.report(decision, 2.0)
        server.report(decision, 2.0)
        assert server.counters.drift_flags > 0
        stats = server.admission.stats[decision.fingerprint]
        assert stats.regression > 1.5

    def test_timed_out_report_counts_slo_not_drift(self, tiny_database, tiny_query):
        server = PlanServer(tiny_database.snapshot(), config=_serve_config(slo_latency=0.5))
        decision = server.serve(tiny_query)
        server.report(decision, 10.0, timed_out=True)
        assert server.counters.slo_violations == 1
        # Censored latencies never enter the drift window.
        assert len(server.store.get(tiny_query).observed) == 0

    def test_maintenance_optimizes_popular_entry(self, tiny_database, tiny_query):
        server = PlanServer(
            tiny_database.snapshot(),
            config=_serve_config(admission=AdmissionConfig(min_arrivals=2)),
        )
        for _ in range(3):
            decision = server.serve(tiny_query)
        records = server.run_maintenance()
        assert len(records) == 1
        assert records[0].reason == "unseen"
        assert records[0].technique == "bao"
        entry = server.store.get(tiny_query)
        assert entry.optimized
        assert entry.history  # the run's trace landed in the store
        assert entry.source == "bao"
        assert server.counters.maintenance_executions > 0
        # The stored optimizer state is detached from the live database.
        assert entry.optimizer is not None
        assert entry.optimizer.database is None
        # Post-maintenance the entry is inside its cooldown: no new tasks.
        assert server.run_maintenance() == []
        server.close()

    def test_checkpoint_resume_restores_state(self, tmp_path, tiny_database, tiny_query):
        database = tiny_database.snapshot()
        server = PlanServer(database, config=_serve_config())
        decision = server.serve(tiny_query)
        execution = database.execute(tiny_query, decision.plan, timeout=600.0)
        server.report(decision, execution.latency)
        path = os.path.join(tmp_path, "store.pkl")
        server.checkpoint(path)

        resumed = PlanServer.resume(path, database, config=_serve_config())
        assert resumed.counters.arrivals == 1
        assert resumed.counters.reports == 1
        assert len(resumed.slo_store) + len(resumed.slo_default) == 1
        assert decision.fingerprint in resumed.admission.stats
        # Same data signature: the execution cache was primed from the store.
        assert len(database.execution_cache.export_outcomes()) > 0
        assert len(resumed.database.execution_cache.export_outcomes()) > 0

    def test_resume_skips_priming_on_data_drift(self, tmp_path, tiny_database, tiny_query):
        database = tiny_database.snapshot()
        server = PlanServer(database, config=_serve_config())
        decision = server.serve(tiny_query)
        database.execute(tiny_query, decision.plan, timeout=600.0)
        path = os.path.join(tmp_path, "store.pkl")
        server.checkpoint(path)

        drifted = rollback_to_date(tiny_database, 500, date_column="order_date")
        assert data_signature(drifted) != data_signature(database)
        resumed = PlanServer.resume(path, drifted, config=_serve_config())
        # Stale outcome logs must not replay against different data.
        assert resumed.database.execution_cache.export_outcomes() == []
        # The store itself (plans, counters) still restores.
        assert resumed.counters.arrivals == 1

    def test_resume_missing_store_raises(self, tmp_path, tiny_database):
        with pytest.raises(OptimizationError):
            PlanServer.resume(os.path.join(tmp_path, "absent.pkl"), tiny_database)

    def test_config_validation(self):
        with pytest.raises(OptimizationError):
            ServeConfig(drift_factor=0.5)
        with pytest.raises(OptimizationError):
            ServeConfig(slo_latency=0.0)
        with pytest.raises(OptimizationError):
            ServeConfig(observation_window=0)


# --------------------------------------------------------------------- traffic + streams
class TestTraffic:
    def test_schedule_is_deterministic(self, tiny_workload):
        config = TrafficConfig(num_arrivals=50, seed=3)
        first = TrafficGenerator(tiny_workload.queries, config)
        second = TrafficGenerator(tiny_workload.queries, config)
        assert [a.query.name for a in first.arrivals()] == [
            a.query.name for a in second.arrivals()
        ]
        different = TrafficGenerator(
            tiny_workload.queries, TrafficConfig(num_arrivals=50, seed=4)
        )
        assert [a.query.name for a in first.arrivals()] != [
            a.query.name for a in different.arrivals()
        ] or first.ranked != different.ranked

    def test_bursts_concentrate_on_hot_set(self, job_workload_small):
        config = TrafficConfig(
            num_arrivals=300, seed=0, burst_every=100, burst_length=50,
            burst_hot_fraction=0.125, zipf_alpha=0.5,
        )
        generator = TrafficGenerator(job_workload_small.queries, config)
        hot = max(1, int(round(0.125 * len(job_workload_small.queries))))
        hot_names = {query.name for query in generator.ranked[:hot]}
        for arrival in generator.arrivals():
            if generator._in_burst(arrival.index):
                assert arrival.query.name in hot_names

    def test_arrival_slicing(self, tiny_workload):
        generator = TrafficGenerator(tiny_workload.queries, TrafficConfig(num_arrivals=20))
        full = generator.arrivals()
        assert [a.index for a in full] == list(range(20))
        tail = generator.arrivals(start=15)
        assert [a.index for a in tail] == list(range(15, 20))
        assert [a.query.name for a in tail] == [a.query.name for a in full[15:]]

    def test_validation(self, tiny_workload):
        with pytest.raises(OptimizationError):
            TrafficConfig(num_arrivals=0)
        with pytest.raises(OptimizationError):
            TrafficConfig(burst_hot_fraction=0.0)
        with pytest.raises(OptimizationError):
            TrafficGenerator([], TrafficConfig())


class TestStream:
    def test_stream_with_drift_and_resume_bitforbit(self, tmp_path, tiny_workload):
        future = tiny_workload.database.snapshot()
        past = rollback_to_date(future, 500, date_column="order_date")
        config = _serve_config(
            admission=AdmissionConfig(min_arrivals=2, cooldown_arrivals=4),
        )
        traffic = TrafficConfig(
            num_arrivals=40, seed=0, burst_every=0,
            drift_events=(DriftEvent(index=20, cutoff=None),),
        )
        generator = TrafficGenerator(tiny_workload.queries, traffic)

        with PlanServer(past, config=config, workload=tiny_workload) as reference_server:
            reference = drive_stream(
                reference_server, generator, future, maintenance_every=10
            )
        assert reference.drift_firings == [20]
        # Fast path: every arrival after first sight of each query is a hit.
        counters = reference_server.counters
        assert counters.fast_path == 40 - counters.misses
        assert counters.planner_calls == counters.misses

        kill_at = 28
        path = os.path.join(tmp_path, "store.pkl")
        with PlanServer(past, config=config, workload=tiny_workload) as victim:
            drive_stream(
                victim, generator, future, stop_index=kill_at,
                maintenance_every=10, checkpoint_path=path,
            )

        with PlanServer.resume(path, future, config=config, workload=tiny_workload) as resumed:
            assert resumed.counters.arrivals == kill_at
            tail = drive_stream(
                resumed, generator, future, start_index=kill_at, maintenance_every=10
            )
        reference_tail = [r for r in reference.records if r.index >= kill_at]
        assert tail.trace() == [
            (r.index, r.query_name, r.fingerprint, r.source, r.latency, r.timed_out)
            for r in reference_tail
        ]

    def test_resume_before_drift_reapplies_nothing(self, tmp_path, tiny_workload):
        future = tiny_workload.database.snapshot()
        past = rollback_to_date(future, 500, date_column="order_date")
        traffic = TrafficConfig(
            num_arrivals=12, seed=0, burst_every=0,
            drift_events=(DriftEvent(index=8, cutoff=None),),
        )
        generator = TrafficGenerator(tiny_workload.queries, traffic)
        with PlanServer(past, config=_serve_config(), workload=tiny_workload) as server:
            result = drive_stream(
                server, generator, future, stop_index=6, maintenance_every=0
            )
            assert result.drift_firings == []
            assert data_signature(server.database) == data_signature(past)


# --------------------------------------------------------------------- reoptimize satellite
class TestWarmStartFromStore:
    def test_reoptimize_seeds_from_deserialized_history(
        self, tmp_path, tiny_database, tiny_schema_model, tiny_query
    ):
        database = tiny_database.snapshot()
        # An "earlier session": maintenance optimizes the query, the store
        # (with its observation history) is persisted.
        server = PlanServer(
            database,
            config=_serve_config(admission=AdmissionConfig(min_arrivals=1)),
        )
        for _ in range(2):
            server.serve(tiny_query)
        assert server.run_maintenance()
        path = os.path.join(tmp_path, "store.pkl")
        server.checkpoint(path)
        server.close()

        # A "later session": nothing in memory but the store file.
        store = PlanStore.load(path)
        entry = store.get(tiny_query)
        assert entry.optimized and entry.history
        history = entry.fastest_history_plans(3)

        optimizer = BayesQO(
            database,
            tiny_schema_model,
            config=BayesQOConfig(max_executions=6, num_candidates=16, seed=0),
        )
        outcome = reoptimize(
            optimizer, tiny_query, entry.best_plan, max_executions=6, history=history,
            include_bao=False,
        )
        sources = {record.source for record in outcome.result.trace}
        assert "init:past_plan" in sources
        if history:
            assert "init:history" in sources
        assert outcome.result.best_latency_or(float("inf")) <= entry.recorded_latency * 2
