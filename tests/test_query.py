"""Tests for query objects."""

import pytest

from repro.db.query import (
    FilterPredicate,
    JoinPredicate,
    Query,
    TableRef,
    alias_base_tables,
    queries_by_template,
    sql_alias,
)
from repro.exceptions import QueryError


def two_table_query(name: str = "q", template: str | None = None) -> Query:
    return Query(
        name,
        [TableRef("a#1", "a"), TableRef("b#1", "b")],
        [JoinPredicate("a#1", "id", "b#1", "a_id")],
        [FilterPredicate("b#1", "flag", "=", 1)],
        template=template,
    )


class TestQueryConstruction:
    def test_basic_accessors(self):
        query = two_table_query()
        assert query.aliases == ["a#1", "b#1"]
        assert query.num_tables == 2
        assert query.num_joins == 1
        assert query.table_of("a#1") == "a"
        assert len(query.filters_for("b#1")) == 1
        assert query.filters_for("a#1") == []

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(QueryError):
            Query("q", [TableRef("a#1", "a"), TableRef("a#1", "a")], [])

    def test_join_predicate_unknown_alias_rejected(self):
        with pytest.raises(QueryError):
            Query(
                "q",
                [TableRef("a#1", "a")],
                [JoinPredicate("a#1", "id", "zzz", "a_id")],
            )

    def test_filter_unknown_alias_rejected(self):
        with pytest.raises(QueryError):
            Query(
                "q",
                [TableRef("a#1", "a")],
                [],
                [FilterPredicate("zzz", "x", "=", 1)],
            )

    def test_unknown_alias_lookup(self):
        with pytest.raises(QueryError):
            two_table_query().table_of("zzz")

    def test_empty_table_ref_rejected(self):
        with pytest.raises(QueryError):
            TableRef("", "a")


class TestJoinPredicates:
    def test_connects(self):
        predicate = JoinPredicate("a#1", "id", "b#1", "a_id")
        assert predicate.connects({"a#1"}, {"b#1"})
        assert predicate.connects({"b#1"}, {"a#1"})
        assert not predicate.connects({"a#1"}, {"c#1"})

    def test_reversed(self):
        predicate = JoinPredicate("a#1", "id", "b#1", "a_id")
        rev = predicate.reversed()
        assert rev.left_alias == "b#1" and rev.right_column == "id"

    def test_predicates_between(self):
        query = two_table_query()
        assert len(query.predicates_between({"a#1"}, {"b#1"})) == 1
        assert query.predicates_between({"a#1"}, set()) == []


class TestGraphsAndRendering:
    def test_join_graph(self):
        graph = two_table_query().join_graph()
        assert graph.has_edge("a#1", "b#1")
        assert graph.number_of_nodes() == 2

    def test_connectivity(self):
        assert two_table_query().is_connected()
        disconnected = Query(
            "q", [TableRef("a#1", "a"), TableRef("b#1", "b")], []
        )
        assert not disconnected.is_connected()

    def test_sql_rendering(self):
        sql = two_table_query().sql()
        assert sql.startswith("SELECT COUNT(*) FROM")
        assert "a AS a_1" in sql and "b AS b_1" in sql
        assert "a_1.id = b_1.a_id" in sql
        assert "flag = 1" in sql

    def test_sql_alias(self):
        assert sql_alias("movie#2") == "movie_2"

    def test_filter_render_in(self):
        flt = FilterPredicate("a#1", "x", "in", (1, 2, 3))
        assert "IN (1, 2, 3)" in flt.render()

    def test_signature_order_independent(self):
        query = two_table_query()
        other = Query(
            "other",
            [TableRef("b#1", "b"), TableRef("a#1", "a")],
            [JoinPredicate("a#1", "id", "b#1", "a_id")],
        )
        assert query.signature() == other.signature()


class TestHelpers:
    def test_queries_by_template(self):
        queries = [two_table_query("q1", "T1"), two_table_query("q2", "T1"), two_table_query("q3")]
        grouped = queries_by_template(queries)
        assert len(grouped["T1"]) == 2
        assert "q3" in grouped

    def test_alias_base_tables(self):
        mapping = alias_base_tables(two_table_query())
        assert mapping == {"a#1": "a", "b#1": "b"}

    def test_alias_base_tables_mismatch(self):
        query = Query("q", [TableRef("a#1", "b")], [])
        with pytest.raises(QueryError):
            alias_base_tables(query)

    def test_validate_against_schema(self, tiny_schema, tiny_query):
        tiny_query.validate_against(tiny_schema)  # does not raise

    def test_validate_against_schema_missing_table(self, tiny_schema):
        query = Query("q", [TableRef("zzz#1", "zzz")], [])
        with pytest.raises(Exception):
            query.validate_against(tiny_schema)
