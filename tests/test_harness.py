"""Tests for the benchmark harness: metrics, reporting and technique runners."""

import numpy as np
import pytest

from repro.core.result import OptimizationResult
from repro.exceptions import OptimizationError
from repro.harness import (
    BudgetSpec,
    StreamingPercentiles,
    WorkloadSummary,
    best_latency_curve,
    format_cdf,
    format_summaries,
    format_table,
    improvement_cdf,
    improvement_distribution,
    improvement_over_baseline,
    percentage_difference,
    run_comparison,
    run_technique,
    workload_curve,
)
from repro.plans.jointree import JoinTree


def make_result(name: str, latencies: list[float]) -> OptimizationResult:
    result = OptimizationResult(name, "X")
    for latency in latencies:
        result.record(JoinTree.left_deep(["a", "b"]), latency, censored=False, timeout=None)
    return result


class TestMetrics:
    def test_improvement_over_baseline(self):
        assert improvement_over_baseline(0.2, 1.0) == pytest.approx(80.0)
        assert improvement_over_baseline(2.0, 1.0) == pytest.approx(-100.0)
        with pytest.raises(ValueError):
            improvement_over_baseline(1.0, 0.0)

    def test_improvement_distribution_and_cdf(self):
        results = {"q1": make_result("q1", [0.5]), "q2": make_result("q2", [2.0])}
        baselines = {"q1": 1.0, "q2": 1.0}
        improvements = improvement_distribution(results, baselines)
        assert improvements["q1"] == pytest.approx(50.0)
        assert improvements["q2"] == pytest.approx(-100.0)
        cdf = improvement_cdf(improvements, thresholds=[0.0, 40.0, 60.0])
        assert cdf == [(0.0, 0.5), (40.0, 0.5), (60.0, 0.0)]

    def test_improvement_distribution_handles_all_censored(self):
        result = OptimizationResult("q1", "X")
        result.record(JoinTree.left_deep(["a", "b"]), 5.0, censored=True, timeout=5.0)
        improvements = improvement_distribution({"q1": result}, {"q1": 1.0})
        assert improvements["q1"] == 0.0

    def test_workload_summary(self):
        summary = WorkloadSummary.from_latencies([1.0, 2.0, 3.0, 10.0])
        assert summary.total == pytest.approx(16.0)
        assert summary.median == pytest.approx(2.5)
        assert summary.p90 >= 3.0
        empty = WorkloadSummary.from_latencies([])
        assert empty.total == 0.0

    def test_best_latency_curve(self):
        result = make_result("q", [5.0, 3.0, 1.0])
        curve = best_latency_curve(result, [4.0, 8.0, 100.0])
        assert curve[0] == float("inf")  # nothing has finished within a budget of 4
        assert curve[1] == pytest.approx(3.0)
        assert curve[-1] == pytest.approx(1.0)

    def test_workload_curve_with_fallback(self):
        results = {"q1": make_result("q1", [2.0]), "q2": make_result("q2", [4.0])}
        budgets = [0.5, 10.0]
        summaries = workload_curve(results, budgets, fallback={"q1": 7.0, "q2": 7.0})
        assert summaries[0].total == pytest.approx(14.0)  # nothing finished yet -> fallback
        assert summaries[1].total == pytest.approx(6.0)

    def test_percentage_difference(self):
        assert percentage_difference(1.5, 1.0) == pytest.approx(50.0)
        assert percentage_difference(0.5, 1.0) == pytest.approx(-50.0)
        with pytest.raises(ValueError):
            percentage_difference(1.0, 0.0)


class TestStreamingPercentiles:
    def test_exact_below_capacity(self, rng):
        values = rng.exponential(1.0, size=200)
        tracker = StreamingPercentiles(capacity=512, seed=0)
        for value in values:
            tracker.add(value)
        assert len(tracker) == 200
        for q in (50, 95, 99):
            assert tracker.percentile(q) == pytest.approx(float(np.percentile(values, q)))
        assert tracker.p50 == tracker.percentile(50)
        assert tracker.p95 == tracker.percentile(95)
        assert tracker.p99 == tracker.percentile(99)

    def test_reservoir_approximates_beyond_capacity(self, rng):
        values = rng.exponential(1.0, size=20_000)
        tracker = StreamingPercentiles(capacity=512, seed=1)
        for value in values:
            tracker.add(value)
        assert len(tracker) == 20_000
        # The reservoir is a uniform sample: p50 lands near the true median.
        true_p50 = float(np.percentile(values, 50))
        assert tracker.p50 == pytest.approx(true_p50, rel=0.25)

    def test_deterministic_and_picklable(self, rng):
        import pickle

        values = list(rng.normal(5.0, 1.0, size=3000))
        first = StreamingPercentiles(capacity=64, seed=3)
        second = StreamingPercentiles(capacity=64, seed=3)
        for value in values[:1500]:
            first.add(value)
            second.add(value)
        # A pickled tracker continues exactly where the original does.
        clone = pickle.loads(pickle.dumps(first))
        for value in values[1500:]:
            first.add(value)
            second.add(value)
            clone.add(value)
        assert first.p95 == second.p95 == clone.p95
        assert first.snapshot() == clone.snapshot()

    def test_empty_and_validation(self):
        tracker = StreamingPercentiles(capacity=4)
        assert tracker.p50 == 0.0
        assert len(tracker) == 0
        snapshot = tracker.snapshot()
        assert snapshot["count"] == 0
        with pytest.raises(ValueError):
            StreamingPercentiles(capacity=0)


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 0.0001]], title="T")
        assert "T" in text and "a" in text and "x" in text

    def test_format_cdf(self):
        series = {"BayesQO": [(0.0, 1.0), (50.0, 0.5)], "Random": [(0.0, 0.8), (50.0, 0.1)]}
        text = format_cdf(series, "Figure 3")
        assert "BayesQO" in text and ">=50%" in text

    def test_format_summaries(self):
        text = format_summaries(["past", "future"],
                                [WorkloadSummary(1, 2, 3, 4), WorkloadSummary(5, 6, 7, 8)],
                                "Figure 6")
        assert "past" in text and "future" in text


@pytest.mark.slow
class TestRunners:
    def test_unknown_technique_rejected(self, tiny_workload):
        with pytest.raises(OptimizationError):
            run_technique("nope", tiny_workload, tiny_workload.queries, BudgetSpec())

    def test_run_bao_and_random(self, tiny_workload):
        budget = BudgetSpec(max_executions=10)
        queries = tiny_workload.queries
        bao = run_technique("bao", tiny_workload, queries, budget)
        random_results = run_technique("random", tiny_workload, queries, budget, seed=1)
        assert set(bao) == {q.name for q in queries}
        assert all(result.num_executions <= 49 for result in bao.values())
        assert all(result.num_executions <= 10 for result in random_results.values())

    def test_run_limeqo(self, tiny_workload):
        results = run_technique("limeqo", tiny_workload, tiny_workload.queries, BudgetSpec(max_executions=6))
        assert set(results) == {q.name for q in tiny_workload.queries}

    def test_run_comparison_small(self, tiny_workload, tiny_schema_model):
        run = run_comparison(
            tiny_workload,
            tiny_workload.queries[:1],
            BudgetSpec(max_executions=8),
            techniques=["bayesqo", "random"],
            schema_model=tiny_schema_model,
        )
        assert set(run.techniques()) == {"bayesqo", "random"}
        assert run.bao_latencies and run.default_latencies
        name = tiny_workload.queries[0].name
        improvements = improvement_distribution(run.results["bayesqo"], run.bao_latencies)
        assert name in improvements
        # BayesQO is initialized with the Bao plans, so it can never regress vs Bao.
        assert improvements[name] >= -1e-6
