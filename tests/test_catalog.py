"""Tests for the schema catalog."""

import networkx as nx
import pytest

from repro.db.catalog import (
    Column,
    ForeignKey,
    Index,
    Schema,
    Table,
    alias_name,
    alias_ordinal,
    alias_table,
)
from repro.exceptions import CatalogError


def make_schema() -> Schema:
    tables = [
        Table("a", [Column("id"), Column("x")]),
        Table("b", [Column("id"), Column("a_id"), Column("y", "float")]),
        Table("c", [Column("id"), Column("b_id")]),
    ]
    fks = [ForeignKey("b", "a_id", "a", "id"), ForeignKey("c", "b_id", "b", "id")]
    return Schema("test", tables, fks)


class TestColumn:
    def test_valid_dtypes(self):
        for dtype in ("int", "float", "date"):
            assert Column("c", dtype).dtype == dtype

    def test_invalid_dtype_raises(self):
        with pytest.raises(CatalogError):
            Column("c", "text")


class TestTable:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("id"), Column("id")])

    def test_primary_key_must_exist(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a")], primary_key="id")

    def test_column_lookup(self):
        table = Table("t", [Column("id"), Column("v")])
        assert table.column("v").name == "v"
        assert table.has_column("id")
        assert not table.has_column("missing")
        with pytest.raises(CatalogError):
            table.column("missing")

    def test_column_names(self):
        table = Table("t", [Column("id"), Column("v")])
        assert table.column_names == ["id", "v"]


class TestSchema:
    def test_table_lookup(self):
        schema = make_schema()
        assert schema.table("a").name == "a"
        assert schema.has_table("b")
        assert not schema.has_table("zzz")
        with pytest.raises(CatalogError):
            schema.table("zzz")

    def test_duplicate_table_rejected(self):
        with pytest.raises(CatalogError):
            Schema("s", [Table("a", [Column("id")]), Table("a", [Column("id")])])

    def test_foreign_key_validation(self):
        with pytest.raises(CatalogError):
            Schema(
                "s",
                [Table("a", [Column("id")])],
                [ForeignKey("a", "missing", "a", "id")],
            )

    def test_len_and_iter(self):
        schema = make_schema()
        assert len(schema) == 3
        assert {table.name for table in schema} == {"a", "b", "c"}
        assert schema.table_names == ["a", "b", "c"]

    def test_join_columns(self):
        schema = make_schema()
        assert schema.join_columns("b", "a") == [("a_id", "id")]
        assert schema.join_columns("a", "b") == [("id", "a_id")]
        assert schema.join_columns("a", "c") == []


class TestIndexes:
    def test_add_index_idempotent(self):
        schema = make_schema()
        first = schema.add_index("b", "a_id")
        second = schema.add_index("b", "a_id")
        assert first is second
        assert schema.has_index("b", "a_id")
        assert not schema.has_index("a", "x")

    def test_add_index_unknown_column(self):
        schema = make_schema()
        with pytest.raises(CatalogError):
            schema.add_index("b", "missing")

    def test_index_all_join_keys(self):
        schema = make_schema()
        schema.index_all_join_keys()
        assert schema.has_index("b", "a_id")
        assert schema.has_index("a", "id")
        assert schema.has_index("c", "b_id")
        assert schema.has_index("b", "id")

    def test_index_name(self):
        assert Index("t", "c").name == "idx_t_c"


class TestReferenceGraphs:
    def test_reference_graph_shape(self):
        graph = make_schema().reference_graph()
        assert set(graph.nodes) == {"a", "b", "c"}
        assert graph.has_edge("a", "b") and graph.has_edge("b", "c")
        assert not graph.has_edge("a", "c")

    def test_alias_k_graph_nodes(self):
        graph = make_schema().alias_k_graph(2)
        assert graph.number_of_nodes() == 6
        assert graph.has_node("a#1") and graph.has_node("a#2")

    def test_alias_k_graph_edges_carry_fk(self):
        graph = make_schema().alias_k_graph(1)
        fk = graph.edges["a#1", "b#1"]["fk"]
        assert fk.table == "b" and fk.ref_table == "a"

    def test_alias_k_graph_connected(self):
        graph = make_schema().alias_k_graph(2)
        assert nx.is_connected(graph)

    def test_alias_k_invalid(self):
        with pytest.raises(CatalogError):
            make_schema().alias_k_graph(0)


class TestAliasHelpers:
    def test_round_trip(self):
        alias = alias_name("title", 2)
        assert alias == "title#2"
        assert alias_table(alias) == "title"
        assert alias_ordinal(alias) == 2

    def test_plain_alias(self):
        assert alias_table("title") == "title"
        assert alias_ordinal("title") == 1
