"""Tests for the execution engine: correctness, latency model, timeouts."""

import numpy as np
import pytest

from repro.db.executor import MAX_MATERIALIZED_ROWS, _expand_matches, _hash_match, _match_counts
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.exceptions import ExecutionError, PlanError
from repro.plans.jointree import JoinOp, JoinTree
from repro.plans.sampling import random_join_tree


class TestHashMatch:
    def test_simple_match(self):
        left = np.array([1, 2, 3, 2])
        right = np.array([2, 2, 4])
        left_idx, right_idx = _hash_match(left, right)
        pairs = set(zip(left_idx.tolist(), right_idx.tolist()))
        assert pairs == {(1, 0), (1, 1), (3, 0), (3, 1)}

    def test_no_matches(self):
        left_idx, right_idx = _hash_match(np.array([1, 2]), np.array([3, 4]))
        assert len(left_idx) == 0 and len(right_idx) == 0

    def test_empty_inputs(self):
        left_idx, _ = _hash_match(np.array([]), np.array([1]))
        assert len(left_idx) == 0

    def test_counts_total_matches_expansion(self, rng):
        left = rng.integers(0, 50, 500)
        right = rng.integers(0, 50, 700)
        counts = _match_counts(left, right)
        left_idx, right_idx = _expand_matches(counts)
        assert counts.total == len(left_idx) == len(right_idx)
        # Every reported pair actually matches.
        assert np.all(left[left_idx] == right[right_idx])


class TestExecution:
    def test_default_plan_executes(self, tiny_database, tiny_query):
        result = tiny_database.execute(tiny_query)
        assert not result.timed_out
        assert result.latency > 0
        assert result.output_rows is not None and result.output_rows >= 0

    def test_count_is_plan_invariant(self, tiny_database, tiny_query, rng):
        """Every valid plan for the query must produce the same COUNT(*)."""
        reference = tiny_database.execute(tiny_query).output_rows
        for _ in range(8):
            plan = random_join_tree(tiny_query, rng)
            result = tiny_database.execute(tiny_query, plan, timeout=300.0)
            if not result.timed_out:
                assert result.output_rows == reference

    def test_count_matches_bruteforce_on_small_join(self, tiny_database):
        query = Query(
            "pair",
            [TableRef("orders#1", "orders"), TableRef("customer#1", "customer")],
            [JoinPredicate("orders#1", "customer_id", "customer#1", "id")],
            [FilterPredicate("customer#1", "region", "=", 1)],
        )
        result = tiny_database.execute(query)
        orders = tiny_database.relations["orders"]
        customers = tiny_database.relations["customer"]
        keep = customers.column("id")[customers.column("region") == 1]
        expected = int(np.isin(orders.column("customer_id"), keep).sum())
        assert result.output_rows == expected

    def test_latency_depends_on_operators(self, tiny_database, tiny_query):
        plan = tiny_database.plan(tiny_query)
        all_nl = plan.with_operators([JoinOp.NESTED_LOOP] * plan.num_joins)
        all_hash = plan.with_operators([JoinOp.HASH] * plan.num_joins)
        nl_latency = tiny_database.execute(tiny_query, all_nl, timeout=600.0).latency
        hash_latency = tiny_database.execute(tiny_query, all_hash, timeout=600.0).latency
        assert nl_latency != hash_latency

    def test_latency_deterministic_without_noise(self, tiny_database, tiny_query):
        plan = tiny_database.plan(tiny_query)
        first = tiny_database.execute(tiny_query, plan).latency
        second = tiny_database.execute(tiny_query, plan).latency
        assert first == second

    def test_invalid_plan_rejected(self, tiny_database, tiny_query):
        wrong = JoinTree.left_deep(["orders#1", "customer#1"])
        with pytest.raises(PlanError):
            tiny_database.execute(tiny_query, wrong)

    def test_breakdown_recorded(self, tiny_database, tiny_query):
        result = tiny_database.execute(tiny_query)
        assert "scan" in result.breakdown and "join" in result.breakdown
        assert result.nodes_executed == 2 * tiny_query.num_tables - 1


class TestTimeouts:
    def test_tight_timeout_censors(self, tiny_database, tiny_query):
        full = tiny_database.execute(tiny_query)
        tight = tiny_database.execute(tiny_query, timeout=full.latency / 10.0)
        assert tight.timed_out
        assert tight.censored
        assert tight.latency == pytest.approx(full.latency / 10.0)
        assert tight.output_rows is None

    def test_loose_timeout_does_not_censor(self, tiny_database, tiny_query):
        full = tiny_database.execute(tiny_query)
        loose = tiny_database.execute(tiny_query, timeout=full.latency * 10.0)
        assert not loose.timed_out
        assert loose.latency == pytest.approx(full.latency)

    def test_censored_latency_equals_timeout(self, tiny_database, tiny_query):
        result = tiny_database.execute(tiny_query, timeout=1e-6)
        assert result.timed_out and result.latency == pytest.approx(1e-6)

    def test_cross_join_plan_times_out(self, tiny_database):
        query = Query(
            "cross",
            [TableRef("orders#1", "orders"), TableRef("shipment#1", "shipment")],
            [],  # no join predicate: a forced cross join
        )
        plan = JoinTree.join(JoinTree.leaf("orders#1"), JoinTree.leaf("shipment#1"), JoinOp.NESTED_LOOP)
        result = tiny_database.execute(query, plan, timeout=0.01)
        assert result.timed_out

    def test_work_cap_without_timeout_raises(self, tiny_database, monkeypatch):
        import repro.db.executor as executor_module

        monkeypatch.setattr(executor_module, "MAX_MATERIALIZED_ROWS", 10)
        query = Query(
            "cap",
            [TableRef("orders#1", "orders"), TableRef("customer#1", "customer")],
            [JoinPredicate("orders#1", "customer_id", "customer#1", "id")],
        )
        with pytest.raises(ExecutionError):
            tiny_database.execute(query)

    def test_true_latency_raises_on_timeout_plans(self, tiny_database, tiny_query):
        # true_latency refuses to report a latency for plans that cannot finish.
        assert tiny_database.executor.true_latency(tiny_query, tiny_database.plan(tiny_query)) > 0


class TestNoise:
    def test_noise_is_deterministic_per_plan(self, tiny_schema, tiny_database, tiny_query):
        from repro.db.executor import Executor

        noisy = Executor(tiny_schema, tiny_database.relations, noise_sigma=0.2, seed=5)
        plan = tiny_database.plan(tiny_query)
        first = noisy.execute(tiny_query, plan).latency
        second = noisy.execute(tiny_query, plan).latency
        assert first == second

    def test_noise_changes_latency(self, tiny_schema, tiny_database, tiny_query):
        from repro.db.executor import Executor

        clean = Executor(tiny_schema, tiny_database.relations, noise_sigma=0.0)
        noisy = Executor(tiny_schema, tiny_database.relations, noise_sigma=0.3, seed=5)
        plan = tiny_database.plan(tiny_query)
        assert clean.execute(tiny_query, plan).latency != noisy.execute(tiny_query, plan).latency

    def test_materialization_cap_is_large(self):
        assert MAX_MATERIALIZED_ROWS >= 1_000_000
