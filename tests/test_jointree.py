"""Tests for join trees."""

import pytest

from repro.db.query import JoinPredicate, Query, TableRef
from repro.exceptions import PlanError
from repro.plans.jointree import JOIN_OPS, JoinOp, JoinTree


def chain_query(n: int = 4) -> Query:
    refs = [TableRef(f"t{i}#1", f"t{i}") for i in range(n)]
    joins = [JoinPredicate(f"t{i}#1", "id", f"t{i + 1}#1", "fk") for i in range(n - 1)]
    return Query("chain", refs, joins)


class TestConstruction:
    def test_leaf(self):
        leaf = JoinTree.leaf("a#1")
        assert leaf.is_leaf
        assert leaf.leaf_aliases() == ["a#1"]
        assert leaf.num_joins == 0
        assert leaf.depth() == 0

    def test_join(self):
        tree = JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("b"), JoinOp.HASH)
        assert not tree.is_leaf
        assert tree.num_joins == 1
        assert tree.leaf_aliases() == ["a", "b"]

    def test_leaf_with_children_rejected(self):
        with pytest.raises(PlanError):
            JoinTree(alias="a", left=JoinTree.leaf("b"), right=JoinTree.leaf("c"), op=JoinOp.HASH)

    def test_internal_missing_parts_rejected(self):
        with pytest.raises(PlanError):
            JoinTree(left=JoinTree.leaf("a"), right=None, op=JoinOp.HASH)

    def test_overlapping_subtrees_rejected(self):
        with pytest.raises(PlanError):
            JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("a"), JoinOp.HASH)

    def test_left_deep_constructor(self):
        tree = JoinTree.left_deep(["a", "b", "c"], [JoinOp.HASH, JoinOp.MERGE])
        assert tree.is_left_deep()
        assert tree.leaf_aliases() == ["a", "b", "c"]
        assert tree.operators() == [JoinOp.HASH, JoinOp.MERGE]

    def test_left_deep_defaults_to_hash(self):
        tree = JoinTree.left_deep(["a", "b", "c"])
        assert all(op is JoinOp.HASH for op in tree.operators())

    def test_left_deep_wrong_op_count(self):
        with pytest.raises(PlanError):
            JoinTree.left_deep(["a", "b", "c"], [JoinOp.HASH])

    def test_left_deep_empty(self):
        with pytest.raises(PlanError):
            JoinTree.left_deep([])


class TestStructure:
    def bushy(self) -> JoinTree:
        left = JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("b"), JoinOp.HASH)
        right = JoinTree.join(JoinTree.leaf("c"), JoinTree.leaf("d"), JoinOp.MERGE)
        return JoinTree.join(left, right, JoinOp.NESTED_LOOP)

    def test_postorder_children_before_parents(self):
        tree = self.bushy()
        nodes = list(tree.postorder())
        assert nodes[-1] is tree
        assert len(nodes) == 7

    def test_join_pairs(self):
        pairs = self.bushy().join_pairs()
        assert pairs[-1] == (frozenset({"a", "b"}), frozenset({"c", "d"}), JoinOp.NESTED_LOOP)

    def test_depth_and_left_deep(self):
        tree = self.bushy()
        assert tree.depth() == 2
        assert not tree.is_left_deep()
        assert JoinTree.left_deep(["a", "b", "c", "d"]).is_left_deep()

    def test_with_operators(self):
        tree = self.bushy()
        new_ops = [JoinOp.MERGE, JoinOp.HASH, JoinOp.HASH]
        replaced = tree.with_operators(new_ops)
        assert replaced.operators() == new_ops
        assert replaced.leaf_aliases() == tree.leaf_aliases()

    def test_with_operators_wrong_count(self):
        with pytest.raises(PlanError):
            self.bushy().with_operators([JoinOp.HASH])

    def test_canonical_and_str(self):
        tree = JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("b"), JoinOp.HASH)
        assert tree.canonical() == "(a ⋈h b)"
        assert str(tree) == tree.canonical()

    def test_logical_key_ignores_operator_and_child_order(self):
        left = JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("b"), JoinOp.HASH)
        right = JoinTree.join(JoinTree.leaf("b"), JoinTree.leaf("a"), JoinOp.MERGE)
        assert left.logical_key() == right.logical_key()
        assert left.canonical() != right.canonical()


class TestQueryValidation:
    def test_validate_for_query_accepts_cover(self):
        query = chain_query(3)
        plan = JoinTree.left_deep(query.aliases)
        plan.validate_for_query(query)

    def test_validate_for_query_missing_alias(self):
        query = chain_query(3)
        plan = JoinTree.left_deep(query.aliases[:2])
        with pytest.raises(PlanError):
            plan.validate_for_query(query)

    def test_validate_for_query_extra_alias(self):
        query = chain_query(2)
        plan = JoinTree.left_deep(query.aliases + ["extra#1"])
        with pytest.raises(PlanError):
            plan.validate_for_query(query)

    def test_cross_join_count(self):
        query = chain_query(3)  # t0 - t1 - t2
        good = JoinTree.left_deep(["t0#1", "t1#1", "t2#1"])
        assert good.count_cross_joins(query) == 0
        bad = JoinTree.left_deep(["t0#1", "t2#1", "t1#1"])
        assert bad.count_cross_joins(query) == 1

    def test_join_ops_constant(self):
        assert len(JOIN_OPS) == 3
        assert JoinOp.HASH.symbol == "⋈h"
