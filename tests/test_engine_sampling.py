"""Tests for the Database facade and the random plan sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.engine import Database
from repro.exceptions import CatalogError, PlanError
from repro.db.query import Query, TableRef
from repro.plans.sampling import random_join_tree, random_join_trees


class TestDatabaseFacade:
    def test_plan_and_execute_default(self, tiny_database, tiny_query):
        plan = tiny_database.plan(tiny_query)
        result = tiny_database.execute(tiny_query, plan)
        assert result.latency > 0

    def test_execute_without_plan_uses_default(self, tiny_database, tiny_query):
        explicit = tiny_database.execute(tiny_query, tiny_database.plan(tiny_query))
        implicit = tiny_database.execute(tiny_query)
        assert implicit.latency == pytest.approx(explicit.latency)

    def test_default_latency(self, tiny_database, tiny_query):
        assert tiny_database.default_latency(tiny_query) > 0

    def test_estimated_cost(self, tiny_database, tiny_query):
        assert tiny_database.estimated_cost(tiny_query, tiny_database.plan(tiny_query)) > 0

    def test_info(self, tiny_database):
        info = tiny_database.info()
        assert info.num_tables == 4
        assert info.total_rows == sum(r.num_rows for r in tiny_database.relations.values())
        assert info.size_bytes > 0
        assert tiny_database.table_rows("orders") == tiny_database.relations["orders"].num_rows

    def test_snapshot_shares_data(self, tiny_database, tiny_query):
        snapshot = tiny_database.snapshot()
        assert snapshot.execute(tiny_query).latency == pytest.approx(
            tiny_database.execute(tiny_query).latency
        )

    def test_with_relations_requires_all_tables(self, tiny_database):
        with pytest.raises(CatalogError):
            Database(tiny_database.schema, {"orders": tiny_database.relations["orders"]})

    def test_missing_relation_rejected(self, tiny_schema):
        with pytest.raises(CatalogError):
            Database(tiny_schema, {})


class TestRandomPlans:
    def test_random_plan_valid(self, tiny_query, rng):
        plan = random_join_tree(tiny_query, rng)
        plan.validate_for_query(tiny_query)

    def test_random_plan_has_no_cross_joins(self, tiny_query, rng):
        for _ in range(30):
            plan = random_join_tree(tiny_query, rng)
            assert plan.count_cross_joins(tiny_query) == 0

    def test_single_table(self, rng):
        query = Query("one", [TableRef("a#1", "a")], [])
        plan = random_join_tree(query, rng)
        assert plan.is_leaf

    def test_empty_query_rejected(self, rng):
        with pytest.raises(PlanError):
            random_join_tree(Query("zero", [], []), rng)

    def test_batch_sampler_deterministic(self, tiny_query):
        first = [p.canonical() for p in random_join_trees(tiny_query, 5, seed=3)]
        second = [p.canonical() for p in random_join_trees(tiny_query, 5, seed=3)]
        assert first == second

    def test_sampler_produces_diverse_plans(self, tiny_query):
        plans = {p.canonical() for p in random_join_trees(tiny_query, 30, seed=0)}
        assert len(plans) > 5

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_plans_always_cover_query(self, seed):
        query = Query(
            "prop",
            [TableRef(f"t{i}#1", f"t{i}") for i in range(5)],
            [
                # chain joins
                *[
                    __import__("repro.db.query", fromlist=["JoinPredicate"]).JoinPredicate(
                        f"t{i}#1", "id", f"t{i+1}#1", "fk"
                    )
                    for i in range(4)
                ]
            ],
        )
        plan = random_join_tree(query, np.random.default_rng(seed))
        plan.validate_for_query(query)
        assert plan.count_cross_joins(query) == 0
