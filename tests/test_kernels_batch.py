"""Property tests: columnar kernels and batch execution are bit-for-bit safe.

Two equivalence claims guard the executor hot path (see
:mod:`repro.db.kernels` for the argument):

* **kernels on == kernels off** — for randomized queries and plans, the
  kernel-backed executor produces the identical ``ExecutionResult`` (latency
  to the last bit, censoring, node counts, cost breakdowns) and the identical
  charge-event stream as the reference path, including timeout censoring and
  work-cap aborts;
* **batch == sequential** — ``Executor.run_batch`` reconstructs every plan's
  result by replaying per-plan charge streams over once-executed shared
  subtrees, so a batch is indistinguishable from calling ``execute`` per
  plan, including per-plan timeouts, censoring, work-cap aborts and
  duplicate plans.

The grid is exercised kernels on/off x batch on/off x cache on/off, plus the
process-pool worker batch path.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro.db.executor as executor_module
from repro.core.protocol import ExecutionOutcome
from repro.db import kernels
from repro.db.engine import Database
from repro.db.plan_cache import CacheStats
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.exceptions import ExecutionError
from repro.exec import (
    ExecutionRequest,
    InlineBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
    perform_batch,
    submit_request_batch,
)
from repro.harness.runner import ExecutionCacheReport
from repro.plans.jointree import JoinTree
from repro.plans.sampling import random_join_tree


# ------------------------------------------------------------------ helpers
def make_database(tiny_database: Database, *, use_kernels: bool, exec_cache: bool) -> Database:
    """A fresh executor over the tiny fixture's immutable relations."""
    return Database(
        tiny_database.schema,
        tiny_database.relations,
        seed=7,
        exec_cache=exec_cache,
        use_kernels=use_kernels,
    )


#: (alias, column, candidate ops, value range) pools for random filters.
_FILTER_POOL = [
    ("orders#1", "quantity", ("=", ">=", "<="), 20),
    ("orders#1", "order_date", (">=", "<="), 1000),
    ("customer#1", "region", ("=", ">="), 8),
    ("customer#1", "segment", ("=",), 4),
    ("product#1", "category", ("=", "<="), 10),
    ("product#1", "price", (">=", "<="), 50),
    ("shipment#1", "carrier", ("=",), 5),
    ("shipment#1", "ship_date", (">=", "<="), 1000),
]


def random_query(rng: np.random.Generator, name: str) -> Query:
    """A random connected query over the tiny star schema.

    Always includes ``orders`` (the hub); each satellite table joins through
    its foreign key with probability ~2/3, and 0-3 random filters apply to
    the chosen aliases.
    """
    refs = [TableRef("orders#1", "orders")]
    joins = []
    if rng.random() < 0.67:
        refs.append(TableRef("customer#1", "customer"))
        joins.append(JoinPredicate("orders#1", "customer_id", "customer#1", "id"))
    if rng.random() < 0.67:
        refs.append(TableRef("product#1", "product"))
        joins.append(JoinPredicate("orders#1", "product_id", "product#1", "id"))
    if rng.random() < 0.67 or len(refs) == 1:
        refs.append(TableRef("shipment#1", "shipment"))
        joins.append(JoinPredicate("shipment#1", "order_id", "orders#1", "id"))
    aliases = {ref.alias for ref in refs}
    pool = [entry for entry in _FILTER_POOL if entry[0] in aliases]
    filters = []
    for pick in rng.choice(len(pool), size=min(len(pool), int(rng.integers(0, 4))), replace=False):
        alias, column, ops, domain = pool[int(pick)]
        op = ops[int(rng.integers(0, len(ops)))]
        filters.append(FilterPredicate(alias, column, op, int(rng.integers(0, domain))))
    return Query(name=name, table_refs=refs, join_predicates=joins, filters=filters)


def assert_same_result(a, b) -> None:
    """Field-by-field ExecutionResult equality, latency compared exactly.

    ``cache`` is deliberately excluded: memoization observability differs
    across the grid (None / hit counts / batched flag) while the *result*
    may not.
    """
    assert a.latency == b.latency  # bit-for-bit, no tolerance
    assert a.timed_out == b.timed_out
    assert a.output_rows == b.output_rows
    assert a.nodes_executed == b.nodes_executed
    assert a.timeout == b.timeout
    assert a.breakdown == b.breakdown


def timeout_grid(latency: float) -> list:
    """Timeouts that exercise completion, near-miss censoring and deep censoring."""
    return [None, latency * 2.0, latency, latency * 0.5, latency * 0.05]


# ------------------------------------------------------------------ kernel primitives
class TestKernelPrimitives:
    def test_probe_equals_match_counts(self, rng):
        for _ in range(20):
            domain = int(rng.integers(2, 120))
            build = rng.integers(0, domain, size=int(rng.integers(0, 400)))
            probe = rng.integers(-5, domain + 5, size=int(rng.integers(0, 300)))
            index = kernels.build_join_index(build)
            via_index = kernels.expand_matches(kernels.probe_join_index(index, probe))
            direct = kernels.expand_matches(kernels.match_counts(probe, build))
            np.testing.assert_array_equal(via_index[0], direct[0])
            np.testing.assert_array_equal(via_index[1], direct[1])

    def test_probe_without_direct_table_falls_back_to_searchsorted(self, rng):
        # A huge key domain disqualifies the direct-address table.
        build = rng.integers(0, 10**9, size=200)
        index = kernels.build_join_index(build)
        assert index.starts_table is None
        probe = np.concatenate([build[:50], rng.integers(0, 10**9, size=100)])
        via_index = kernels.expand_matches(kernels.probe_join_index(index, probe))
        direct = kernels.expand_matches(kernels.match_counts(probe, build))
        np.testing.assert_array_equal(via_index[0], direct[0])
        np.testing.assert_array_equal(via_index[1], direct[1])

    def test_expand_fast_equals_reference(self, rng):
        """expand_matches_fast hits all three paths (unique-all, unique-sparse,
        run concatenation) and must reproduce the reference expansion exactly."""
        cases = []
        for _ in range(15):
            domain = int(rng.integers(1, 60))
            cases.append((
                rng.integers(0, domain, size=int(rng.integers(0, 300))),
                rng.integers(0, domain, size=int(rng.integers(0, 300))),
            ))
        # Unique build side, full coverage: every probe row matches exactly once.
        perm = rng.permutation(80)
        cases.append((perm[:50], perm))
        # Unique build side, partial coverage: some probe rows miss.
        cases.append((rng.integers(0, 200, size=120), rng.permutation(100)))
        for left, right in cases:
            match = kernels.match_counts(left, right)
            ref_l, ref_r = kernels.expand_matches(match)
            fast_l, fast_r = kernels.expand_matches_fast(match)
            np.testing.assert_array_equal(ref_l, fast_l)
            np.testing.assert_array_equal(ref_r, fast_r)

    def test_expand_pairs_gathers_equal_reference(self, rng):
        """The factorized PairSet gathers reproduce the materialized expansion."""
        for _ in range(15):
            domain = int(rng.integers(1, 60))
            left = rng.integers(0, domain, size=int(rng.integers(0, 300)))
            right = rng.integers(0, domain, size=int(rng.integers(0, 200)))
            match = kernels.match_counts(left, right)
            ref_l, ref_r = kernels.expand_matches(match)
            pairs = kernels.expand_pairs(match)
            assert pairs.count == len(ref_l)
            np.testing.assert_array_equal(pairs.left_indices(), ref_l)
            np.testing.assert_array_equal(pairs.right_idx, ref_r)
            left_values = rng.integers(0, 1000, size=match.num_left)
            right_values = rng.integers(0, 1000, size=len(right))
            np.testing.assert_array_equal(pairs.gather_left(left_values), left_values[ref_l])
            np.testing.assert_array_equal(pairs.gather_right(right_values), right_values[ref_r])

    def test_pair_order_is_left_major_right_stable(self):
        left = np.array([7, 7, 3])
        right = np.array([7, 3, 7, 7])
        left_idx, right_idx = kernels.expand_matches(kernels.match_counts(left, right))
        # Ordered by left row; within a left row by original right position.
        assert left_idx.tolist() == [0, 0, 0, 1, 1, 1, 2]
        assert right_idx.tolist() == [0, 2, 3, 0, 2, 3, 1]

    def test_empty_sides(self):
        empty = np.array([], dtype=np.int64)
        keys = np.array([1, 2, 3])
        for left, right in [(empty, keys), (keys, empty), (empty, empty)]:
            match = kernels.match_counts(left, right)
            assert match.total == 0 and match.num_left == len(left)
            left_idx, right_idx = kernels.expand_matches(match)
            assert len(left_idx) == 0 and len(right_idx) == 0
        assert kernels.build_join_index(empty).num_keys == 0
        probe = kernels.probe_join_index(kernels.build_join_index(empty), keys)
        assert probe.total == 0 and probe.num_left == 3

    def test_fused_filter_equals_sequential(self, rng):
        for _ in range(10):
            n = int(rng.integers(1, 200))
            pairs = [
                (rng.integers(0, 4, size=n), rng.integers(0, 4, size=n))
                for _ in range(int(rng.integers(1, 4)))
            ]
            fused = kernels.fused_equality_filter(pairs)
            sequential = np.ones(n, dtype=bool)
            for lv, rv in pairs:
                sequential &= lv == rv
            np.testing.assert_array_equal(fused, sequential)
        assert kernels.fused_equality_filter([]) is None

    def test_predicate_key_is_content_based(self):
        assert kernels.predicate_key("c", "=", 3) == kernels.predicate_key("c", "=", 3)
        assert kernels.predicate_key("c", "=", 3) != kernels.predicate_key("c", "=", 4)
        assert kernels.predicate_key("c", "=", 3) != kernels.predicate_key("c", ">=", 3)
        a = kernels.predicate_key("c", "in", np.array([1, 2]))
        b = kernels.predicate_key("c", "in", np.array([1, 2]))
        c = kernels.predicate_key("c", "in", np.array([1, 3]))
        assert a == b != c
        assert kernels.predicate_key("c", "in", [2, 1]) == kernels.predicate_key("c", "in", (1, 2))
        hash(kernels.predicate_key("c", "in", {"x": 1}))  # unhashable value -> repr key


# ------------------------------------------------------------------ kernel-vs-reference execution
class TestKernelExecutorEquivalence:
    def test_randomized_queries_and_plans(self, tiny_database):
        rng = np.random.default_rng(11)
        reference = make_database(tiny_database, use_kernels=False, exec_cache=False)
        kernel = make_database(tiny_database, use_kernels=True, exec_cache=False)
        for case in range(12):
            query = random_query(rng, f"prop_q{case}")
            for _ in range(3):
                plan = random_join_tree(query, rng)
                base = reference.execute(query, plan, timeout=None)
                for timeout in timeout_grid(base.latency):
                    assert_same_result(
                        reference.execute(query, plan, timeout=timeout),
                        kernel.execute(query, plan, timeout=timeout),
                    )

    def test_charge_event_streams_identical(self, tiny_database, tiny_query, rng):
        """With caching on, the recorded outcome logs (the full charge-event
        streams) match event-for-event between the kernel and reference paths."""
        reference = make_database(tiny_database, use_kernels=False, exec_cache=True)
        kernel = make_database(tiny_database, use_kernels=True, exec_cache=True)
        for _ in range(4):
            plan = random_join_tree(tiny_query, rng)
            assert_same_result(
                reference.execute(tiny_query, plan, timeout=600.0),
                kernel.execute(tiny_query, plan, timeout=600.0),
            )
        assert reference.execution_cache.export_outcomes() == (
            kernel.execution_cache.export_outcomes()
        )

    def test_censoring_identical_with_cache(self, tiny_database, tiny_query, rng):
        reference = make_database(tiny_database, use_kernels=False, exec_cache=True)
        kernel = make_database(tiny_database, use_kernels=True, exec_cache=True)
        plan = random_join_tree(tiny_query, rng)
        latency = reference.execute(tiny_query, plan, timeout=None).latency
        for timeout in timeout_grid(latency):
            assert_same_result(
                reference.execute(tiny_query, plan, timeout=timeout),
                kernel.execute(tiny_query, plan, timeout=timeout),
            )

    def test_work_cap_abort_identical(self, tiny_database, tiny_query, monkeypatch):
        """A cross join blowing the (monkeypatched) materialization cap censors
        at the identical point with kernels on or off, and raises without a
        timeout on both paths."""
        monkeypatch.setattr(executor_module, "MAX_MATERIALIZED_ROWS", 10_000)
        # product x shipment first: no join predicate between them -> cross join.
        plan = JoinTree.left_deep(["product#1", "shipment#1", "orders#1", "customer#1"])
        reference = make_database(tiny_database, use_kernels=False, exec_cache=False)
        kernel = make_database(tiny_database, use_kernels=True, exec_cache=False)
        ref_result = reference.execute(tiny_query, plan, timeout=600.0)
        assert ref_result.timed_out  # the cap converts to censoring under a timeout
        assert_same_result(ref_result, kernel.execute(tiny_query, plan, timeout=600.0))
        with pytest.raises(ExecutionError):
            reference.execute(tiny_query, plan, timeout=None)
        with pytest.raises(ExecutionError):
            kernel.execute(tiny_query, plan, timeout=None)

    def test_match_indices_identical(self, tiny_database, tiny_query, rng):
        """The raw match index arrays (not just counts) agree pairwise."""
        reference = make_database(tiny_database, use_kernels=False, exec_cache=False)
        kernel = make_database(tiny_database, use_kernels=True, exec_cache=False)
        captured: dict[str, list] = {"ref": [], "ker": []}

        def capture(executor, bucket):
            original = executor._match

            def wrapper(query, left, right, predicates, state):
                pair = original(query, left, right, predicates, state)
                bucket.append((pair.left_indices().copy(), pair.right_idx.copy()))
                return pair

            return wrapper

        reference.executor._match = capture(reference.executor, captured["ref"])
        kernel.executor._match = capture(kernel.executor, captured["ker"])
        plan = random_join_tree(tiny_query, rng)
        reference.execute(tiny_query, plan, timeout=600.0)
        kernel.execute(tiny_query, plan, timeout=600.0)
        assert len(captured["ref"]) == len(captured["ker"]) > 0
        for (rl, rr), (kl, kr) in zip(captured["ref"], captured["ker"]):
            np.testing.assert_array_equal(rl, kl)
            np.testing.assert_array_equal(rr, kr)


# ------------------------------------------------------------------ relation-side caches
class TestRelationCaches:
    def test_select_cached_matches_select(self, tiny_database, rng):
        relation = tiny_database.relations["orders"]
        for _ in range(8):
            predicates = []
            if rng.random() < 0.8:
                predicates.append(("quantity", ">=", int(rng.integers(0, 20))))
            if rng.random() < 0.5:
                predicates.append(("order_date", "<=", int(rng.integers(0, 1000))))
            plain = relation.select(iter(predicates))
            cached, key = relation.select_cached(iter(predicates))
            np.testing.assert_array_equal(plain, cached)
            again, key2 = relation.select_cached(iter(predicates))
            assert again is cached and key == key2  # memoized, not recomputed

    def test_pickle_drops_kernel_caches(self, tiny_database, tiny_query, rng):
        database = make_database(tiny_database, use_kernels=True, exec_cache=False)
        plan = random_join_tree(tiny_query, rng)
        warm = database.execute(tiny_query, plan, timeout=600.0)
        replica: Database = pickle.loads(pickle.dumps(database))
        for relation in replica.relations.values():
            assert not relation._mask_cache and not relation._index_cache
        assert_same_result(warm, replica.execute(tiny_query, plan, timeout=600.0))


# ------------------------------------------------------------------ batch-vs-sequential
class TestBatchEquivalence:
    def _plans(self, query, rng, n=6):
        plans = [random_join_tree(query, rng) for _ in range(n)]
        plans[-1] = plans[0]  # duplicate plan inside the batch
        return plans

    @pytest.mark.parametrize("use_kernels", [True, False])
    @pytest.mark.parametrize("exec_cache", [True, False])
    def test_batch_matches_sequential(self, tiny_database, tiny_query, use_kernels, exec_cache):
        rng = np.random.default_rng(23)
        plans = self._plans(tiny_query, rng)
        sequential_db = make_database(
            tiny_database, use_kernels=use_kernels, exec_cache=exec_cache
        )
        batch_db = make_database(tiny_database, use_kernels=use_kernels, exec_cache=exec_cache)
        base = [sequential_db.execute(tiny_query, plan, timeout=600.0) for plan in plans]
        # Per-plan timeouts: censor some plans, complete others, one uncapped.
        timeouts = [600.0, base[1].latency * 0.3, None, base[3].latency, 600.0, 0.75]
        sequential_db = make_database(
            tiny_database, use_kernels=use_kernels, exec_cache=exec_cache
        )
        sequential = [
            sequential_db.execute(tiny_query, plan, timeout=timeout)
            for plan, timeout in zip(plans, timeouts)
        ]
        batched = batch_db.execute_batch(tiny_query, plans, timeouts)
        assert len(batched) == len(sequential)
        for seq, bat in zip(sequential, batched):
            assert_same_result(seq, bat)
            assert bat.cache is not None and bat.cache.batched

    def test_batch_dedups_shared_subtrees(self, tiny_database, tiny_query):
        """Sibling plans sharing a join prefix replay it instead of re-executing."""
        database = make_database(tiny_database, use_kernels=True, exec_cache=False)
        a = JoinTree.left_deep(["orders#1", "customer#1", "product#1", "shipment#1"])
        # b shares the (orders, customer) prefix with a, then diverges.
        b = JoinTree.left_deep(["orders#1", "customer#1", "shipment#1", "product#1"])
        results = database.execute_batch(tiny_query, [a, a, b], 600.0)
        # Plan 2 is a duplicate: replayed wholesale from the batch's outcome dedup.
        assert results[1].cache.outcome_hit
        # Plan 3 shares the (orders, customer) subtree with plan 1.
        assert results[2].cache.subplan_hits > 0
        assert_same_result(results[0], results[1])

    def test_batch_work_cap_per_plan(self, tiny_database, tiny_query, monkeypatch):
        """A work-capped plan censors inside a batch exactly as alone, and its
        incomplete subtrees don't poison the sibling that completes."""
        monkeypatch.setattr(executor_module, "MAX_MATERIALIZED_ROWS", 10_000)
        capped = JoinTree.left_deep(["product#1", "shipment#1", "orders#1", "customer#1"])
        fine = JoinTree.left_deep(["orders#1", "customer#1", "product#1", "shipment#1"])
        solo_db = make_database(tiny_database, use_kernels=True, exec_cache=False)
        solo = [
            solo_db.execute(tiny_query, capped, timeout=600.0),
            solo_db.execute(tiny_query, fine, timeout=600.0),
        ]
        batch_db = make_database(tiny_database, use_kernels=True, exec_cache=False)
        batched = batch_db.execute_batch(tiny_query, [capped, fine], 600.0)
        assert batched[0].timed_out and not batched[1].timed_out
        for s, b in zip(solo, batched):
            assert_same_result(s, b)

    def test_batch_timeout_validation(self, tiny_database, tiny_query, rng):
        database = make_database(tiny_database, use_kernels=True, exec_cache=False)
        plan = random_join_tree(tiny_query, rng)
        with pytest.raises(ExecutionError):
            database.execute_batch(tiny_query, [plan, plan], [600.0])
        assert database.execute_batch(tiny_query, [], None) == []

    def test_run_batch_scalar_timeout_broadcasts(self, tiny_database, tiny_query, rng):
        database = make_database(tiny_database, use_kernels=True, exec_cache=False)
        plans = [random_join_tree(tiny_query, rng) for _ in range(3)]
        scalar = database.execute_batch(tiny_query, plans, 600.0)
        explicit = make_database(
            tiny_database, use_kernels=True, exec_cache=False
        ).execute_batch(tiny_query, plans, [600.0, 600.0, 600.0])
        for s, e in zip(scalar, explicit):
            assert_same_result(s, e)


# ------------------------------------------------------------------ backend batch paths
class TestBackendBatchPaths:
    def _requests(self, query, plans, timeout=600.0):
        return [
            ExecutionRequest(query=query, plan=plan, timeout=timeout, proposal_id=i)
            for i, plan in enumerate(plans)
        ]

    def test_inline_submit_batch_matches_sequential(self, tiny_database, tiny_query, rng):
        plans = [random_join_tree(tiny_query, rng) for _ in range(4)]
        sequential_db = make_database(tiny_database, use_kernels=True, exec_cache=False)
        expected = [
            ExecutionOutcome.from_execution(
                sequential_db.execute(tiny_query, plan, timeout=600.0), 600.0
            )
            for plan in plans
        ]
        backend = InlineBackend(make_database(tiny_database, use_kernels=True, exec_cache=False))
        futures = submit_request_batch(backend, self._requests(tiny_query, plans))
        outcomes = [future.result() for future in futures]
        for got, want in zip(outcomes, expected):
            assert got.latency == want.latency
            assert got.timed_out == want.timed_out
            assert got.cache is not None and got.cache.batched

    def test_thread_submit_batch_matches_sequential(self, tiny_database, tiny_query, rng):
        plans = [random_join_tree(tiny_query, rng) for _ in range(4)]
        sequential_db = make_database(tiny_database, use_kernels=True, exec_cache=False)
        expected = [sequential_db.execute(tiny_query, plan, timeout=600.0) for plan in plans]
        backend = ThreadPoolBackend(
            make_database(tiny_database, use_kernels=True, exec_cache=False), max_workers=2
        )
        try:
            futures = backend.submit_batch(self._requests(tiny_query, plans))
            outcomes = [future.result() for future in futures]
        finally:
            backend.close()
        for got, want in zip(outcomes, expected):
            assert got.latency == want.latency and got.timed_out == want.timed_out

    def test_process_submit_batch_matches_sequential(self, tiny_database, tiny_query, rng):
        plans = [random_join_tree(tiny_query, rng) for _ in range(3)]
        sequential_db = make_database(tiny_database, use_kernels=True, exec_cache=False)
        expected = [sequential_db.execute(tiny_query, plan, timeout=600.0) for plan in plans]
        backend = ProcessPoolBackend(
            make_database(tiny_database, use_kernels=True, exec_cache=False),
            max_workers=1,
            queries=[tiny_query],
            warmup=False,
        )
        try:
            futures = backend.submit_batch(self._requests(tiny_query, plans))
            outcomes = [future.result() for future in futures]
        finally:
            backend.close()
        for got, want in zip(outcomes, expected):
            assert got.latency == want.latency and got.timed_out == want.timed_out

    def test_perform_batch_falls_back_for_mixed_queries(
        self, tiny_database, tiny_query, tiny_three_table_query, rng
    ):
        """Different queries in one submission execute per-request (no grouping)."""
        database = make_database(tiny_database, use_kernels=True, exec_cache=False)
        requests = [
            ExecutionRequest(
                query=tiny_query, plan=random_join_tree(tiny_query, rng), timeout=600.0
            ),
            ExecutionRequest(
                query=tiny_three_table_query,
                plan=random_join_tree(tiny_three_table_query, rng),
                timeout=600.0,
            ),
        ]
        outcomes = perform_batch(database, requests)
        assert len(outcomes) == 2
        # Per-request fallback: no batch flag on the stats.
        for outcome in outcomes:
            assert outcome.cache is None or not outcome.cache.batched

    def test_perform_batch_skips_databases_without_batch_support(
        self, tiny_database, tiny_query, rng
    ):
        """Duck-typed wrappers relying on __getattr__ must not be treated as
        batch-capable (delegation would bypass their execute override)."""

        class Wrapper:
            def __init__(self, inner):
                self._inner = inner
                self.calls = 0

            def execute(self, query, plan, timeout=None):
                self.calls += 1
                return self._inner.execute(query, plan, timeout=timeout)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        wrapper = Wrapper(make_database(tiny_database, use_kernels=True, exec_cache=False))
        plans = [random_join_tree(tiny_query, rng) for _ in range(2)]
        outcomes = perform_batch(
            wrapper,
            [ExecutionRequest(query=tiny_query, plan=plan, timeout=600.0) for plan in plans],
        )
        assert wrapper.calls == 2  # went through the wrapper's execute, per request
        assert len(outcomes) == 2


# ------------------------------------------------------------------ session bookkeeping
class TestSessionBookkeeping:
    def test_cache_report_counts_batched_executions(self):
        report = ExecutionCacheReport()
        report.note(CacheStats(batched=True))
        report.note(CacheStats(batched=False))
        report.note(None)
        assert report.executions == 3
        assert report.batched_executions == 1
        assert report.summary()["batched_executions"] == 1

    def test_cache_stats_batched_defaults_off(self):
        assert CacheStats().batched is False
