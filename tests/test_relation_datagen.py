"""Tests for columnar relations and the synthetic data generator."""

import numpy as np
import pytest

from repro.db.catalog import Column, ForeignKey, Schema, Table
from repro.db.datagen import ColumnSpec, DataGenerator, TableSpec, zipf_choices
from repro.db.relation import Relation
from repro.exceptions import CatalogError, ExecutionError


def simple_relation() -> Relation:
    table = Table("t", [Column("id"), Column("v"), Column("w")])
    return Relation(
        table,
        {
            "id": np.arange(10),
            "v": np.array([0, 1, 2, 3, 4, 0, 1, 2, 3, 4]),
            "w": np.array([5, 5, 5, 5, 5, 9, 9, 9, 9, 9]),
        },
    )


class TestRelation:
    def test_basic_properties(self):
        relation = simple_relation()
        assert relation.num_rows == 10
        assert relation.name == "t"
        assert set(relation.column_names) == {"id", "v", "w"}

    def test_missing_column_rejected(self):
        table = Table("t", [Column("id"), Column("v")])
        with pytest.raises(CatalogError):
            Relation(table, {"id": np.arange(3)})

    def test_mismatched_lengths_rejected(self):
        table = Table("t", [Column("id"), Column("v")])
        with pytest.raises(CatalogError):
            Relation(table, {"id": np.arange(3), "v": np.arange(4)})

    def test_unknown_column_lookup(self):
        with pytest.raises(CatalogError):
            simple_relation().column("missing")

    def test_filter_masks(self):
        relation = simple_relation()
        assert relation.filter_mask("v", "=", 2).sum() == 2
        assert relation.filter_mask("v", "!=", 2).sum() == 8
        assert relation.filter_mask("v", "<", 2).sum() == 4
        assert relation.filter_mask("v", "<=", 2).sum() == 6
        assert relation.filter_mask("v", ">", 3).sum() == 2
        assert relation.filter_mask("v", ">=", 3).sum() == 4
        assert relation.filter_mask("v", "in", (0, 4)).sum() == 4

    def test_unknown_operator(self):
        with pytest.raises(ExecutionError):
            simple_relation().filter_mask("v", "like", 1)

    def test_select_conjunction(self):
        relation = simple_relation()
        rows = relation.select([("v", "=", 2), ("w", "=", 9)])
        assert list(rows) == [7]

    def test_take_and_with_rows(self):
        relation = simple_relation()
        subset = relation.with_rows(np.array([1, 3, 5]))
        assert subset.num_rows == 3
        assert list(subset.column("v")) == [1, 3, 0]
        assert list(relation.take(np.array([0, 9]), "w")) == [5, 9]


class TestZipfChoices:
    def test_uniform_when_skew_zero(self, rng):
        draws = zipf_choices(rng, 100, 5000, skew=0.0)
        assert draws.min() >= 0 and draws.max() < 100

    def test_skew_concentrates_mass(self, rng):
        draws = zipf_choices(rng, 1000, 20000, skew=1.5)
        _, counts = np.unique(draws, return_counts=True)
        top_share = np.sort(counts)[::-1][:10].sum() / len(draws)
        assert top_share > 0.3  # top-10 values dominate under heavy skew

    def test_invalid_population(self, rng):
        with pytest.raises(CatalogError):
            zipf_choices(rng, 0, 10, 1.0)


class TestDataGenerator:
    def make_generator(self) -> DataGenerator:
        tables = [
            Table("dim", [Column("id"), Column("attr")]),
            Table("fact", [Column("id"), Column("dim_id"), Column("derived"), Column("when", "date")]),
        ]
        schema = Schema("g", tables, [ForeignKey("fact", "dim_id", "dim", "id")])
        specs = {
            "dim": TableSpec(50, {"attr": ColumnSpec("categorical", cardinality=5)}),
            "fact": TableSpec(500, {
                "derived": ColumnSpec("derived", cardinality=20, source_column="dim_id", noise=0.0),
                "when": ColumnSpec("date", date_min=10, date_max=20),
            }),
        }
        return DataGenerator(schema, specs, seed=1)

    def test_generates_all_tables(self):
        relations = self.make_generator().generate()
        assert set(relations) == {"dim", "fact"}
        assert relations["dim"].num_rows == 50
        assert relations["fact"].num_rows == 500

    def test_primary_keys_dense(self):
        relations = self.make_generator().generate()
        assert list(relations["dim"].column("id")) == list(range(50))

    def test_foreign_keys_reference_existing_rows(self):
        relations = self.make_generator().generate()
        fk = relations["fact"].column("dim_id")
        assert fk.min() >= 0 and fk.max() < 50

    def test_derived_column_correlates_with_source(self):
        relations = self.make_generator().generate()
        fact = relations["fact"]
        derived = fact.column("derived")
        expected = (fact.column("dim_id") * 2654435761) % 20
        assert np.array_equal(derived, expected)  # noise=0 -> perfectly correlated

    def test_date_column_bounds(self):
        relations = self.make_generator().generate()
        when = relations["fact"].column("when")
        assert when.min() >= 10 and when.max() <= 20

    def test_deterministic_given_seed(self):
        first = self.make_generator().generate()
        second = self.make_generator().generate()
        assert np.array_equal(first["fact"].column("dim_id"), second["fact"].column("dim_id"))

    def test_missing_spec_rejected(self):
        tables = [Table("only", [Column("id")])]
        schema = Schema("g", tables, [])
        with pytest.raises(CatalogError):
            DataGenerator(schema, {}, seed=0)

    def test_derived_without_source_rejected(self):
        tables = [Table("t", [Column("id"), Column("d")])]
        schema = Schema("g", tables, [])
        specs = {"t": TableSpec(10, {"d": ColumnSpec("derived", cardinality=5)})}
        with pytest.raises(CatalogError):
            DataGenerator(schema, specs, seed=0).generate()
