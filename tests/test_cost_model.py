"""Tests for the operator cost model."""

import pytest

from repro.db.cost import (
    CostParams,
    hash_join_cost,
    index_scan_cost,
    join_cost,
    merge_join_cost,
    nested_loop_cost,
    seq_scan_cost,
)
from repro.plans.jointree import JoinOp


class TestScanCosts:
    def test_seq_scan_linear(self):
        assert seq_scan_cost(2000) == pytest.approx(2 * seq_scan_cost(1000))

    def test_index_scan_cheaper_when_selective(self):
        table_rows = 100_000
        assert index_scan_cost(table_rows, 10) < seq_scan_cost(table_rows)

    def test_index_scan_more_expensive_when_unselective(self):
        table_rows = 100_000
        assert index_scan_cost(table_rows, table_rows) > seq_scan_cost(table_rows)

    def test_negative_rows_clamped(self):
        assert seq_scan_cost(-5) == 0.0


class TestJoinCosts:
    def test_hash_join_linear_in_inputs(self):
        small = hash_join_cost(1000, 1000, 100)
        large = hash_join_cost(10_000, 10_000, 100)
        assert 5 < large / small < 15

    def test_nested_loop_quadratic_without_index(self):
        small = nested_loop_cost(1000, 1000, 0, inner_indexed=False, inner_table_rows=0)
        large = nested_loop_cost(10_000, 10_000, 0, inner_indexed=False, inner_table_rows=0)
        assert large / small == pytest.approx(100, rel=0.01)

    def test_indexed_nested_loop_much_cheaper(self):
        plain = nested_loop_cost(10_000, 50_000, 10_000, inner_indexed=False, inner_table_rows=50_000)
        indexed = nested_loop_cost(10_000, 50_000, 10_000, inner_indexed=True, inner_table_rows=50_000)
        assert indexed < plain / 20

    def test_merge_join_includes_sort(self):
        no_sort = merge_join_cost(1, 1, 0)
        with_sort = merge_join_cost(100_000, 100_000, 0)
        assert with_sort > no_sort

    def test_hash_beats_nested_loop_on_large_inputs(self):
        rows = 50_000
        assert hash_join_cost(rows, rows, rows) < nested_loop_cost(
            rows, rows, rows, inner_indexed=False, inner_table_rows=rows
        )

    def test_output_cost_counted(self):
        base = hash_join_cost(1000, 1000, 0)
        with_output = hash_join_cost(1000, 1000, 1_000_000)
        assert with_output > base

    def test_dispatch_matches_specific_functions(self):
        args = dict(outer_rows=500.0, inner_rows=700.0, output_rows=50.0)
        assert join_cost(JoinOp.HASH, **args) == pytest.approx(hash_join_cost(**args))
        assert join_cost(JoinOp.MERGE, **args) == pytest.approx(merge_join_cost(**args))
        assert join_cost(JoinOp.NESTED_LOOP, **args, inner_indexed=False, inner_table_rows=0) == (
            pytest.approx(nested_loop_cost(**args, inner_indexed=False, inner_table_rows=0))
        )

    def test_custom_params_scale_costs(self):
        cheap = CostParams(seq_row=1e-9)
        assert seq_scan_cost(1000, cheap) < seq_scan_cost(1000)

    def test_dynamic_range_spans_orders_of_magnitude(self):
        # A bad plan (cross-join-sized nested loop) must be vastly slower than a
        # good plan (hash join) over the same inputs: this is the property the
        # timeout machinery exists for.
        good = hash_join_cost(20_000, 20_000, 20_000)
        bad = nested_loop_cost(20_000, 20_000, 20_000, inner_indexed=False, inner_table_rows=20_000)
        assert bad / good > 50
