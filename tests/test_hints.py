"""Tests for hint sets (the Bao steering knobs)."""

import pytest

from repro.exceptions import PlanError
from repro.plans.hints import DEFAULT_HINT_SET, HintSet, bao_hint_sets, hint_set_by_name
from repro.plans.jointree import JOIN_OPS, JoinOp


class TestHintSet:
    def test_default_enables_everything(self):
        assert all(DEFAULT_HINT_SET.allows_join(op) for op in JOIN_OPS)
        assert DEFAULT_HINT_SET.allows_seq_scan()
        assert DEFAULT_HINT_SET.allows_index_scan()

    def test_restricted_join_ops(self):
        hint = HintSet(join_ops=frozenset([JoinOp.HASH]))
        assert hint.allows_join(JoinOp.HASH)
        assert not hint.allows_join(JoinOp.NESTED_LOOP)

    def test_restricted_scans(self):
        hint = HintSet(scan_methods=frozenset(["seq"]))
        assert hint.allows_seq_scan()
        assert not hint.allows_index_scan()
        index_only = HintSet(scan_methods=frozenset(["index_only"]))
        assert index_only.allows_index_scan()
        assert not index_only.allows_seq_scan()

    def test_empty_join_ops_rejected(self):
        with pytest.raises(PlanError):
            HintSet(join_ops=frozenset())

    def test_empty_scans_rejected(self):
        with pytest.raises(PlanError):
            HintSet(scan_methods=frozenset())

    def test_unknown_scan_rejected(self):
        with pytest.raises(PlanError):
            HintSet(scan_methods=frozenset(["bitmap"]))

    def test_name_is_stable(self):
        hint = HintSet(join_ops=frozenset([JoinOp.HASH, JoinOp.MERGE]))
        assert "hash" in hint.name and "merge" in hint.name
        assert str(hint) == hint.name


class TestBaoHintSets:
    def test_exactly_49(self):
        # 7 non-empty join-op subsets x 7 non-empty scan subsets.
        assert len(bao_hint_sets()) == 49

    def test_all_distinct(self):
        names = [hint.name for hint in bao_hint_sets()]
        assert len(names) == len(set(names))

    def test_first_is_all_enabled(self):
        first = bao_hint_sets()[0]
        assert first.join_ops == frozenset(JOIN_OPS)
        assert len(first.scan_methods) == 3

    def test_every_set_valid(self):
        for hint in bao_hint_sets():
            assert hint.join_ops and hint.scan_methods

    def test_lookup_by_name(self):
        target = bao_hint_sets()[5]
        assert hint_set_by_name(target.name) == target

    def test_lookup_unknown_name(self):
        with pytest.raises(PlanError):
            hint_set_by_name("nope")
