"""Property-style tests: the incremental surrogate paths (rank-1 Cholesky
updates, closed-form batched fantasize, warm engine updates) must agree with
the from-scratch fit/predict path to tight numerical tolerance."""

import numpy as np
import pytest

from repro.bo.censored import truncated_normal_mean
from repro.bo.gp import CensoredGP, ExactGP
from repro.bo.kernels import Matern52Kernel, RBFKernel, pairwise_sqdist
from repro.bo.loop import BOEngine, BOEngineConfig

ATOL = 1e-6


def make_dataset(seed: int, n: int, dim: int):
    rng = np.random.default_rng(seed)
    x = rng.random((n, dim))
    y = np.sin(3.0 * x.sum(axis=1)) + 0.05 * rng.standard_normal(n)
    return x, y, rng


class TestKernelCachedState:
    @pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
    def test_from_sqdist_matches_call(self, kernel_cls, rng):
        kernel = kernel_cls(lengthscale=0.7, outputscale=1.8)
        a, b = rng.standard_normal((8, 3)), rng.standard_normal((5, 3))
        assert np.allclose(kernel(a, b), kernel.from_sqdist(pairwise_sqdist(a, b)), atol=1e-12)

    @pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
    def test_analytic_lengthscale_gradient(self, kernel_cls, rng):
        """grad_from_sqdist matches a central finite difference in log lengthscale."""
        x = rng.standard_normal((6, 2))
        sqdist = pairwise_sqdist(x, x)
        kernel = kernel_cls(lengthscale=0.9, outputscale=1.3)
        _, grad = kernel.grad_from_sqdist(sqdist)
        eps = 1e-6
        up = kernel.with_params(np.exp(np.log(0.9) + eps), 1.3).from_sqdist(sqdist)
        down = kernel.with_params(np.exp(np.log(0.9) - eps), 1.3).from_sqdist(sqdist)
        assert np.allclose(grad, (up - down) / (2 * eps), atol=1e-6)


class TestRank1Update:
    @pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_incremental_matches_scratch(self, kernel_cls, seed):
        x, y, rng = make_dataset(seed, n=24, dim=3)
        gp = ExactGP(kernel=kernel_cls()).fit(x[:16], y[:16])
        for i in range(16, 24):
            gp.add_observation(x[i], y[i])
        scratch = ExactGP(kernel=gp.kernel, noise=gp.noise).fit(
            x, y, optimize_hyperparameters=False
        )
        query = rng.random((10, 3))
        mean_inc, std_inc = gp.predict(query)
        mean_ref, std_ref = scratch.predict(query)
        assert np.allclose(mean_inc, mean_ref, atol=ATOL)
        assert np.allclose(std_inc, std_ref, atol=ATOL)

    def test_add_observation_restandardizes(self):
        x, y, _ = make_dataset(3, n=10, dim=2)
        gp = ExactGP().fit(x[:9], y[:9], optimize_hyperparameters=False)
        gp.add_observation(x[9], y[9])
        assert gp._y_mean == pytest.approx(float(y.mean()))
        assert gp.num_observations == 10

    def test_duplicate_point_falls_back_to_refactorization(self):
        x, y, rng = make_dataset(4, n=12, dim=2)
        gp = ExactGP().fit(x, y)
        gp.add_observation(x[0], y[0] + 0.1)  # exact duplicate input
        scratch = ExactGP(kernel=gp.kernel, noise=gp.noise).fit(
            np.vstack([x, x[0]]), np.append(y, y[0] + 0.1), optimize_hyperparameters=False
        )
        query = rng.random((5, 2))
        assert np.allclose(gp.predict(query)[0], scratch.predict(query)[0], atol=ATOL)

    def test_wrong_dimension_rejected(self):
        from repro.exceptions import ModelError

        x, y, _ = make_dataset(5, n=6, dim=3)
        gp = ExactGP().fit(x, y)
        with pytest.raises(ModelError):
            gp.add_observation(np.zeros(2), 0.0)


class TestClosedFormFantasize:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fantasize_matches_clone_refit(self, seed):
        x, y, rng = make_dataset(seed, n=18, dim=3)
        gp = ExactGP().fit(x, y)
        x_new, y_new = rng.random(3), 2.0
        query = rng.random((6, 3))
        mean_fast, std_fast = gp.fantasize(x_new, y_new, query)
        clone = ExactGP(kernel=gp.kernel, noise=gp.noise).fit(
            np.vstack([x, x_new]), np.append(y, y_new), optimize_hyperparameters=False
        )
        mean_ref, std_ref = clone.predict(query)
        assert np.allclose(mean_fast, mean_ref, atol=ATOL)
        assert np.allclose(std_fast, std_ref, atol=ATOL)

    def test_batch_matches_per_level_refits(self):
        x, y, rng = make_dataset(6, n=15, dim=2)
        gp = ExactGP().fit(x, y)
        x_new = rng.random(2)
        query = rng.random((4, 2))
        levels = np.linspace(-1.0, 3.0, 17)
        means, stds = gp.fantasize_batch(x_new, levels, query)
        assert means.shape == stds.shape == (17, 4)
        for i, level in enumerate(levels):
            clone = ExactGP(kernel=gp.kernel, noise=gp.noise).fit(
                np.vstack([x, x_new]), np.append(y, level), optimize_hyperparameters=False
            )
            mean_ref, std_ref = clone.predict(query)
            assert np.allclose(means[i], mean_ref, atol=ATOL)
            assert np.allclose(stds[i], std_ref, atol=ATOL)

    def test_censored_batch_matches_impute_then_refit(self):
        """CensoredGP.fantasize_batch == seed semantics: truncated-normal
        imputation under the current posterior, then a (virtual) full refit."""
        x, y, rng = make_dataset(7, n=16, dim=2)
        censored = np.zeros(16, dtype=bool)
        censored[10:13] = True
        y = y.copy()
        y[10:13] += 1.0
        gp = CensoredGP().fit(x, y, censored)
        x_new = rng.random(2)
        query = rng.random((5, 2))
        levels = np.array([0.0, 0.5, 1.5, 3.0])
        means, stds = gp.fantasize_batch(x_new, levels, query)
        post_mean, post_std = gp.predict(np.atleast_2d(x_new))
        fitted_values = gp.gp._y_raw
        for i, level in enumerate(levels):
            imputed = truncated_normal_mean(post_mean, post_std, np.array([level]))[0]
            clone = ExactGP(kernel=gp.gp.kernel, noise=gp.gp.noise).fit(
                np.vstack([x, x_new]),
                np.append(fitted_values, imputed),
                optimize_hyperparameters=False,
            )
            mean_ref, std_ref = clone.predict(query)
            assert np.allclose(means[i], mean_ref, atol=ATOL)
            assert np.allclose(stds[i], std_ref, atol=ATOL)


class TestCensoredIncremental:
    def test_uncensored_add_matches_scratch(self):
        x, y, rng = make_dataset(8, n=20, dim=3)
        censored = np.zeros(20, dtype=bool)
        gp = CensoredGP().fit(x[:15], y[:15], censored[:15])
        for i in range(15, 20):
            gp.add_observation(x[i], y[i], censored=False)
        scratch = ExactGP(kernel=gp.gp.kernel, noise=gp.gp.noise).fit(
            x, y, optimize_hyperparameters=False
        )
        query = rng.random((8, 3))
        assert np.allclose(gp.predict(query)[0], scratch.predict(query)[0], atol=ATOL)
        assert np.allclose(gp.predict(query)[1], scratch.predict(query)[1], atol=ATOL)

    def test_censored_add_is_one_em_step(self):
        """A censored warm add imputes with the truncated-normal mean under the
        *pre-update* posterior, then conditions on the imputed value."""
        x, y, rng = make_dataset(9, n=14, dim=2)
        gp = CensoredGP().fit(x, y, np.zeros(14, dtype=bool))
        x_new, level = rng.random(2), 1.5
        mean, std = gp.predict(np.atleast_2d(x_new))
        expected_imputed = truncated_normal_mean(mean, std, np.array([level]))[0]
        gp.add_observation(x_new, level, censored=True)
        scratch = ExactGP(kernel=gp.gp.kernel, noise=gp.gp.noise).fit(
            np.vstack([x, x_new]),
            np.append(y, expected_imputed),
            optimize_hyperparameters=False,
        )
        query = rng.random((6, 2))
        assert np.allclose(gp.predict(query)[0], scratch.predict(query)[0], atol=ATOL)
        assert gp.num_censored == 1
        assert gp.num_observations == 15

    def test_add_before_fit_bootstraps(self):
        gp = CensoredGP()
        gp.add_observation(np.array([0.2, 0.4]), 1.0)
        assert gp.num_observations == 1


class TestWarmEngine:
    def make_engine(self, refit_every: int) -> BOEngine:
        return BOEngine(
            np.zeros(3), np.ones(3), config=BOEngineConfig(refit_every=refit_every), seed=0
        )

    def test_incremental_fit_reuses_surrogate(self):
        engine = self.make_engine(refit_every=10)
        rng = np.random.default_rng(0)
        for _ in range(5):
            engine.add_observation(rng.random(3), float(rng.standard_normal()))
        engine.fit()
        warm = engine.surrogate
        for _ in range(4):
            engine.add_observation(rng.random(3), float(rng.standard_normal()))
            engine.fit()
        assert engine.surrogate is warm
        assert warm.num_observations == engine.num_observations

    def test_refit_boundary_rebuilds_surrogate(self):
        engine = self.make_engine(refit_every=3)
        rng = np.random.default_rng(1)
        for _ in range(4):
            engine.add_observation(rng.random(3), float(rng.standard_normal()))
        engine.fit()
        first = engine.surrogate
        for _ in range(3):
            engine.add_observation(rng.random(3), float(rng.standard_normal()))
        engine.fit()
        assert engine.surrogate is not first
        assert engine.surrogate.num_observations == engine.num_observations

    def test_warm_predictions_match_scratch(self):
        engine = self.make_engine(refit_every=100)
        x, y, rng = make_dataset(10, n=20, dim=3)
        for i in range(6):
            engine.add_observation(x[i], float(y[i]))
        engine.fit()
        for i in range(6, 20):
            engine.add_observation(x[i], float(y[i]))
            engine.fit()
        warm = engine.surrogate
        scratch = ExactGP(kernel=warm.gp.kernel, noise=warm.gp.noise).fit(
            engine._normalize(x), y, optimize_hyperparameters=False
        )
        query = rng.random((7, 3))
        mean_w, std_w = engine.predict(query)
        mean_s, std_s = scratch.predict(engine._normalize(query))
        assert np.allclose(mean_w, mean_s, atol=ATOL)
        assert np.allclose(std_w, std_s, atol=ATOL)

    def test_force_refit_always_rebuilds(self):
        engine = self.make_engine(refit_every=50)
        rng = np.random.default_rng(2)
        for _ in range(4):
            engine.add_observation(rng.random(3), float(rng.standard_normal()))
        engine.fit()
        first = engine.surrogate
        engine.fit(force=True)
        assert engine.surrogate is not first

    def test_batched_fantasize_matches_sequential(self):
        engine = self.make_engine(refit_every=5)
        rng = np.random.default_rng(3)
        for _ in range(10):
            engine.add_observation(rng.random(3), float(rng.standard_normal()))
        candidate = rng.random(3)
        levels = np.linspace(-0.5, 2.0, 9)
        means, stds = engine.fantasize_censored_batch(candidate, levels)
        for i, level in enumerate(levels):
            mean, std = engine.fantasize_censored(candidate, float(level))
            assert means[i] == pytest.approx(mean, abs=ATOL)
            assert stds[i] == pytest.approx(std, abs=ATOL)

    def test_replay_does_not_update_trust_region(self):
        """Satellite regression: replayed observations must leave the trust
        region untouched (a cached replay is not a fresh failure/success)."""
        engine = self.make_engine(refit_every=5)
        rng = np.random.default_rng(4)
        for _ in range(5):
            engine.add_observation(rng.random(3), 1.0)
        before = (
            engine.trust_region.length,
            engine.trust_region.success_count,
            engine.trust_region.failure_count,
            len(engine.trust_region.history),
        )
        engine.add_observation(rng.random(3), 5.0, update_trust_region=False)
        after = (
            engine.trust_region.length,
            engine.trust_region.success_count,
            engine.trust_region.failure_count,
            len(engine.trust_region.history),
        )
        assert before == after
        assert engine.num_observations == 6
        # The default path still updates the region.
        engine.add_observation(rng.random(3), 5.0)
        assert len(engine.trust_region.history) == before[3] + 1
