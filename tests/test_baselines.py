"""Tests for the Bao, Random, Balsa and LimeQO baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BalsaConfig,
    BalsaOptimizer,
    BaoOptimizer,
    LimeQOConfig,
    LimeQOOptimizer,
    PlanFeaturizer,
    RandomSearch,
    bao_best_latency,
    complete_matrix,
)


class TestBao:
    def test_runs_all_distinct_hint_plans(self, tiny_database, tiny_query):
        outcome = BaoOptimizer(tiny_database).optimize(tiny_query)
        assert 1 <= outcome.result.num_executions <= 49
        assert outcome.best_latency > 0
        outcome.best_plan.validate_for_query(tiny_query)

    def test_best_is_minimum_of_trace(self, tiny_database, tiny_query):
        outcome = BaoOptimizer(tiny_database).optimize(tiny_query)
        uncensored = [r.latency for r in outcome.result.trace if not r.censored]
        assert outcome.best_latency == pytest.approx(min(uncensored))

    def test_best_no_worse_than_default(self, tiny_database, tiny_query):
        default = tiny_database.default_latency(tiny_query)
        assert BaoOptimizer(tiny_database).optimize(tiny_query).best_latency <= default + 1e-9

    def test_time_budget_limits_executions(self, tiny_database, tiny_query):
        limited = BaoOptimizer(tiny_database).optimize(tiny_query, time_budget=1e-9)
        assert limited.result.num_executions <= 1

    def test_convenience_helper(self, tiny_database, tiny_query):
        assert bao_best_latency(tiny_database, tiny_query) > 0


class TestRandomSearch:
    def test_respects_execution_budget(self, tiny_database, tiny_query):
        result = RandomSearch(tiny_database, seed=1).optimize(tiny_query, max_executions=20)
        assert result.num_executions <= 20
        assert result.trace[0].source == "default"

    def test_first_execution_is_default_plan(self, tiny_database, tiny_query):
        result = RandomSearch(tiny_database, seed=1).optimize(tiny_query, max_executions=5)
        default = tiny_database.plan(tiny_query).canonical()
        assert result.trace[0].plan.canonical() == default

    def test_never_worse_than_default(self, tiny_database, tiny_query):
        result = RandomSearch(tiny_database, seed=2).optimize(tiny_query, max_executions=25)
        default = tiny_database.default_latency(tiny_query)
        assert result.best_latency <= default + 1e-9

    def test_timeouts_bounded_by_best_seen(self, tiny_database, tiny_query):
        result = RandomSearch(tiny_database, seed=3).optimize(tiny_query, max_executions=25)
        best_so_far = float("inf")
        for record in result.trace[1:]:
            if record.timeout is not None and np.isfinite(best_so_far):
                assert record.timeout <= best_so_far + 1e-9
            if not record.censored:
                best_so_far = min(best_so_far, record.latency)

    def test_time_budget(self, tiny_database, tiny_query):
        result = RandomSearch(tiny_database, seed=1).optimize(
            tiny_query, max_executions=100, time_budget=0.01
        )
        assert result.total_cost <= 0.01 + 600.0  # first execution may consume up to its timeout

    def test_deterministic_per_seed(self, tiny_database, tiny_query):
        first = RandomSearch(tiny_database, seed=5).optimize(tiny_query, max_executions=10)
        second = RandomSearch(tiny_database, seed=5).optimize(tiny_query, max_executions=10)
        assert [r.plan.canonical() for r in first.trace] == [r.plan.canonical() for r in second.trace]


class TestBalsa:
    def test_featurizer_shape_and_content(self, tiny_database, tiny_query):
        featurizer = PlanFeaturizer(tiny_database)
        plan = tiny_database.plan(tiny_query)
        features = featurizer.featurize(tiny_query, plan)
        assert features.shape == (featurizer.dim,)
        assert features.sum() > 0

    def test_featurizer_distinguishes_plans(self, tiny_database, tiny_query, rng):
        from repro.plans.sampling import random_join_tree

        featurizer = PlanFeaturizer(tiny_database)
        a = featurizer.featurize(tiny_query, tiny_database.plan(tiny_query))
        b = featurizer.featurize(tiny_query, random_join_tree(tiny_query, rng))
        assert not np.array_equal(a, b)

    def test_optimize_runs_within_budget(self, tiny_database, tiny_query):
        balsa = BalsaOptimizer(tiny_database, BalsaConfig(seed=0, retrain_every=5, training_epochs=10))
        result = balsa.optimize(tiny_query, max_executions=25)
        assert result.num_executions <= 25
        assert result.best_latency > 0

    def test_seeded_with_bao_plans(self, tiny_database, tiny_query):
        balsa = BalsaOptimizer(tiny_database, BalsaConfig(seed=0))
        result = balsa.optimize(tiny_query, max_executions=20)
        assert result.sources().get("init:bao", 0) >= 1

    def test_uses_constant_timeout_multiplier(self, tiny_database, tiny_query):
        config = BalsaConfig(seed=0, timeout_multiplier=1.5)
        result = BalsaOptimizer(tiny_database, config).optimize(tiny_query, max_executions=20)
        best_so_far = None
        for record in result.trace:
            if record.timeout is not None and best_so_far is not None:
                assert record.timeout <= 1.5 * best_so_far + 1e-9
            if not record.censored:
                best_so_far = record.latency if best_so_far is None else min(best_so_far, record.latency)


@pytest.mark.slow
class TestLimeQO:
    def test_matrix_completion_recovers_low_rank(self, rng):
        u = rng.standard_normal((12, 2))
        v = rng.standard_normal((9, 2))
        matrix = u @ v.T
        observed = rng.random((12, 9)) < 0.6
        completed = complete_matrix(matrix, observed, rank=2, iterations=30, regularization=0.01)
        error = np.abs(completed[~observed] - matrix[~observed]).mean()
        assert error < 0.5

    def test_optimize_workload_traces(self, tiny_database, tiny_query, tiny_three_table_query):
        limeqo = LimeQOOptimizer(tiny_database, LimeQOConfig(rank=2, als_iterations=5))
        results = limeqo.optimize_workload(
            [tiny_query, tiny_three_table_query], max_executions=12
        )
        assert set(results) == {tiny_query.name, tiny_three_table_query.name}
        total = sum(result.num_executions for result in results.values())
        assert total <= 12
        # Every query got at least its bootstrap execution.
        assert all(result.num_executions >= 1 for result in results.values())

    def test_limeqo_never_beats_bao_best(self, tiny_database, tiny_query):
        """LimeQO's search space is the hint sets, so Bao's exhaustive best is its floor."""
        bao_best = BaoOptimizer(tiny_database).optimize(tiny_query).best_latency
        results = LimeQOOptimizer(tiny_database).optimize_workload([tiny_query], max_executions=60)
        assert results[tiny_query.name].best_latency >= bao_best - 1e-9
