"""Observability: tracer semantics, metrics registry, exporters, determinism.

The layer's contract has two halves and both are pinned here: the telemetry
*works* (spans link causally, worker spans fold in without id collisions,
registries merge, exports round-trip) and the telemetry *does not perturb*
(session and serve-stream traces are bit-for-bit identical with tracing on
or off).
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.core.protocol import BudgetSpec
from repro.harness import WorkloadSession
from repro.harness.metrics import StreamingPercentiles
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    SpanRecord,
    Tracer,
    chrome_trace,
    read_jsonl,
    render_report,
    span_stats,
    write_chrome_trace,
    write_jsonl,
)
from repro.serve import (
    AdmissionConfig,
    DriftEvent,
    PlanServer,
    ServeConfig,
    TrafficConfig,
    TrafficGenerator,
    drive_stream,
)
from repro.workloads.drift import rollback_to_date


class FakeClock:
    """A manually advanced clock: deterministic span durations in tests."""

    def __init__(self) -> None:
        self.time = 0.0

    def __call__(self) -> float:
        return self.time

    def tick(self, dt: float = 1.0) -> float:
        self.time += dt
        return self.time


# ------------------------------------------------------------------ tracer
class TestTracer:
    def test_span_context_manager_records_on_exit(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", category="test", answer=42) as span:
            clock.tick(2.0)
            span.annotate(extra="yes")
        [record] = tracer.spans()
        assert record.name == "outer"
        assert record.category == "test"
        assert record.duration == 2.0
        assert record.attrs == {"answer": 42, "extra": "yes"}
        assert record.parent_id is None

    def test_nesting_links_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner", parent=outer):
                pass
        inner, outer_record = tracer.spans()
        assert inner.name == "inner"
        assert inner.parent_id == outer_record.span_id
        # Accepts raw ids too.
        tracer.instant("marker", parent=outer_record.span_id)
        assert tracer.spans()[-1].parent_id == outer_record.span_id

    def test_exception_annotates_error(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        [record] = tracer.spans()
        assert record.attrs["error"] == "ValueError"

    def test_record_with_explicit_start_and_end(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        start = tracer.now()
        clock.tick(3.0)
        record = tracer.record("direct", start, category="test", hit=True)
        assert record.duration == 3.0
        assert record.attrs == {"hit": True}
        explicit = tracer.record("explicit", 1.0, end=1.5)
        assert explicit.duration == 0.5

    def test_instant_is_zero_duration(self):
        tracer = Tracer(clock=FakeClock())
        record = tracer.instant("mark", category="test")
        assert record.duration == 0.0

    def test_ids_are_unique_and_increasing(self):
        tracer = Tracer(clock=FakeClock())
        ids = [tracer.instant(f"s{i}").span_id for i in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3, clock=FakeClock())
        for i in range(5):
            tracer.instant(f"s{i}")
        assert [r.name for r in tracer.spans()] == ["s2", "s3", "s4"]
        assert len(tracer) == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_drain_empties_buffer(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("a")
        drained = tracer.drain()
        assert [r.name for r in drained] == ["a"]
        assert len(tracer) == 0

    def test_adopt_reissues_ids_and_remaps_links(self):
        worker = Tracer(clock=FakeClock())
        outer = worker.span("w.outer").done()
        inner = worker.instant("w.inner", parent=outer)
        worker.instant("w.follower", follows=inner.span_id)

        scheduler = Tracer(clock=FakeClock())
        # Burn scheduler ids so worker ids would collide without remapping.
        for i in range(5):
            scheduler.instant(f"s{i}")
        root = scheduler.spans()[0]
        adopted = scheduler.adopt(worker.drain(), parent=root)

        by_name = {r.name: r for r in adopted}
        scheduler_ids = {r.span_id for r in scheduler.spans()}
        assert len(scheduler_ids) == len(scheduler.spans())  # no collisions
        # Roots re-parented under the given parent; intra-batch links remapped.
        assert by_name["w.outer"].parent_id == root.span_id
        assert by_name["w.inner"].parent_id == by_name["w.outer"].span_id
        assert by_name["w.follower"].attrs["follows"] == by_name["w.inner"].span_id

    def test_pickle_roundtrip_keeps_records_and_fresh_ids(self):
        tracer = Tracer(capacity=8, clock=FakeClock())
        tracer.instant("before", key="value")
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.spans() == tracer.spans()
        assert clone.capacity == 8
        taken = {r.span_id for r in clone.spans()}
        new = clone.instant("after")
        assert new.span_id not in taken

    def test_unpicklable_clock_falls_back(self):
        tracer = Tracer(clock=lambda: 0.0)
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.now() >= 0.0  # perf_counter fallback

    def test_span_record_roundtrip(self):
        record = SpanRecord(1, None, "n", "c", 0.0, 1.0, {"a": 1})
        assert pickle.loads(pickle.dumps(record)) == record
        assert record.replace(name="m").name == "m"
        assert record.replace(name="m") != record


class TestNullTracer:
    def test_is_inert(self, tmp_path):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("ignored", category="x") as span:
            span.annotate(anything=1)
        assert tracer.record("ignored", 0.0) is None
        assert tracer.instant("ignored") is None
        assert tracer.adopt([SpanRecord(1, None, "n", "c", 0.0, 1.0, {})]) == []
        assert tracer.spans() == [] and tracer.drain() == [] and len(tracer) == 0

    def test_shared_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


# ------------------------------------------------------------------ metrics
class TestMetricsRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_sections(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.gauge("depth").set(2.5)
        for value in [1.0, 2.0, 3.0, 4.0]:
            registry.histogram("lat").observe(value)
        snap = registry.snapshot()
        assert snap["counters"] == {"events": 3}
        assert snap["gauges"] == {"depth": 2.5}
        assert snap["histograms"]["lat"]["count"] == 4
        assert snap["histograms"]["lat"]["p50"] == pytest.approx(2.5)

    def test_timer_uses_injected_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.timer("step"):
            clock.tick(4.0)
        assert registry.histogram("step").percentile(50) == pytest.approx(4.0)

    def test_providers_surface_and_failures_are_contained(self):
        registry = MetricsRegistry()
        registry.register_provider("good", lambda: {"ok": 1})

        def bad():
            raise RuntimeError("subsystem down")

        registry.register_provider("bad", bad)
        providers = registry.snapshot()["providers"]
        assert providers["good"] == {"ok": 1}
        assert providers["bad"] == {"error": "RuntimeError: subsystem down"}

    def test_merge_folds_worker_registry(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.counter("n").inc(2)
        worker.counter("n").inc(5)
        worker.gauge("depth").set(7.0)
        for value in [1.0, 2.0]:
            main.histogram("lat").observe(value)
        for value in [3.0, 4.0]:
            worker.histogram("lat").observe(value)
        worker.histogram("worker_only").observe(9.0)
        main.merge(worker)
        snap = main.snapshot()
        assert snap["counters"]["n"] == 7
        assert snap["gauges"]["depth"] == 7.0
        assert snap["histograms"]["lat"]["count"] == 4
        assert snap["histograms"]["worker_only"]["count"] == 1

    def test_pickle_drops_providers_keeps_instruments(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.counter("n").inc(4)
        registry.register_provider("p", lambda: {"x": 1})
        clone = pickle.loads(pickle.dumps(registry))
        snap = clone.snapshot()
        assert snap["counters"]["n"] == 4
        assert snap["providers"] == {}


# ------------------------------------------- StreamingPercentiles.merge
class TestStreamingPercentilesMerge:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("sizes", [(5, 5), (0, 20), (30, 1), (64, 64)])
    def test_under_capacity_merge_is_exact_vs_numpy(self, seed, sizes):
        rng = np.random.default_rng(seed)
        left_data = rng.exponential(size=sizes[0])
        right_data = rng.exponential(size=sizes[1])
        left = StreamingPercentiles(capacity=256, seed=seed)
        right = StreamingPercentiles(capacity=256, seed=seed + 1)
        for value in left_data:
            left.add(value)
        for value in right_data:
            right.add(value)
        left.merge(right)
        combined = np.concatenate([left_data, right_data])
        assert len(left) == len(combined)
        for q in (10, 50, 90, 99):
            assert left.percentile(q) == pytest.approx(
                float(np.percentile(combined, q)), rel=1e-12
            )

    def test_over_capacity_merge_is_deterministic_and_bounded(self):
        def build():
            rng = np.random.default_rng(3)
            left = StreamingPercentiles(capacity=32, seed=0)
            right = StreamingPercentiles(capacity=32, seed=1)
            for value in rng.normal(10.0, 1.0, size=200):
                left.add(value)
            for value in rng.normal(20.0, 1.0, size=200):
                right.add(value)
            left.merge(right)
            return left

        first, second = build(), build()
        assert len(first) == 400
        assert first._values == second._values  # seeded: same merge, same reservoir
        # The subsample still spans both streams.
        assert first.percentile(10) < 15.0 < first.percentile(90)

    def test_merge_empty_is_noop(self):
        left = StreamingPercentiles(capacity=8, seed=0)
        left.add(1.0)
        left.merge(StreamingPercentiles(capacity=8, seed=1))
        assert len(left) == 1 and left.percentile(50) == 1.0

    def test_pickle_roundtrip_preserves_stream_state(self):
        tracker = StreamingPercentiles(capacity=16, seed=5)
        for value in range(40):
            tracker.add(float(value))
        clone = pickle.loads(pickle.dumps(tracker))
        assert len(clone) == len(tracker)
        assert clone.snapshot() == tracker.snapshot()
        # Continued streams evolve identically: the RNG state travelled.
        tracker.add(99.0)
        clone.add(99.0)
        assert clone.snapshot() == tracker.snapshot()


# ------------------------------------------------------------------ export
class TestExport:
    def _records(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", category="exec", query="q1") as outer:
            clock.tick(1.0)
            tracer.instant("inner", category="serve", parent=outer, follows=7)
            clock.tick(1.0)
        return tracer.spans()

    def test_jsonl_roundtrip(self, tmp_path):
        records = self._records()
        path = os.path.join(tmp_path, "spans.jsonl")
        write_jsonl(records, path)
        assert read_jsonl(path) == records
        write_jsonl(records, path, append=True)
        assert read_jsonl(path) == records + records

    def test_chrome_trace_layout(self, tmp_path):
        records = self._records()
        trace = chrome_trace(records, process_name="unit")
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {"unit", "exec", "serve"} <= {e["args"]["name"] for e in metadata}
        by_name = {e["name"]: e for e in spans}
        # Categories map to distinct tracks; µs timestamps; attrs land in args.
        assert by_name["outer"]["tid"] != by_name["inner"]["tid"]
        assert by_name["outer"]["dur"] == pytest.approx(2e6)
        assert by_name["inner"]["args"]["follows"] == 7
        assert by_name["inner"]["args"]["parent_id"] == by_name["outer"]["args"]["span_id"]

        path = os.path.join(tmp_path, "trace.json")
        write_chrome_trace(records, path, process_name="unit")
        with open(path) as handle:
            assert json.load(handle)["traceEvents"]


class TestReport:
    def test_span_stats_subtracts_child_self_time(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("parent") as parent:
            clock.tick(1.0)
            with tracer.span("child", parent=parent):
                clock.tick(3.0)
        stats = span_stats(tracer.spans())
        assert stats["parent"]["total"] == pytest.approx(4.0)
        assert stats["parent"]["self"] == pytest.approx(1.0)
        assert stats["child"]["self"] == pytest.approx(3.0)

    def test_render_report_sections(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work", category="exec"):
            clock.tick(1.0)
        registry = MetricsRegistry()
        registry.counter("served").inc(2)
        registry.histogram("lat").observe(0.5)
        registry.register_provider("cache", lambda: {"hits": 3})
        text = render_report(tracer.spans(), registry.snapshot())
        for needle in ("observability report", "work", "exec", "served", "lat", "cache", "hits"):
            assert needle in text

    def test_render_report_without_spans(self):
        assert "no spans buffered" in render_report([], None)


# ------------------------------------------------- integration: determinism
def _serve_setup(workload):
    future = workload.database.snapshot()
    past = rollback_to_date(future, 500, date_column="order_date")
    config = ServeConfig(
        technique="bao",
        budget=BudgetSpec(max_executions=6),
        drift_factor=1.3,
        seed=0,
        admission=AdmissionConfig(min_arrivals=2, cooldown_arrivals=4),
    )
    traffic = TrafficConfig(
        num_arrivals=40, seed=0, burst_every=0,
        drift_events=(DriftEvent(index=20, cutoff=None),),
    )
    generator = TrafficGenerator(workload.queries, traffic)
    return past, future, config, generator


class TestTracingDeterminism:
    def test_serve_stream_identical_traced_and_untraced(self, tiny_workload):
        past, future, config, generator = _serve_setup(tiny_workload)
        with PlanServer(past, config=config, workload=tiny_workload) as untraced:
            reference = drive_stream(untraced, generator, future, maintenance_every=10)
        tracer = Tracer()
        with PlanServer(past, config=config, workload=tiny_workload, tracer=tracer) as server:
            traced = drive_stream(server, generator, future, maintenance_every=10)
        assert traced.trace() == reference.trace()
        assert len(tracer) > 0

    def test_serve_stream_causal_chain_reconstructs(self, tiny_workload):
        past, future, config, generator = _serve_setup(tiny_workload)
        tracer = Tracer()
        with PlanServer(past, config=config, workload=tiny_workload, tracer=tracer) as server:
            drive_stream(server, generator, future, maintenance_every=10)
        from benchmarks.bench_obs import count_causal_chains

        spans = tracer.spans()
        names = {record.name for record in spans}
        assert {"serve.arrival", "serve.admission", "serve.reoptimize", "store.upsert"} <= names
        assert count_causal_chains(spans) >= 1

    def test_session_identical_traced_and_untraced(self, tiny_workload):
        budget = BudgetSpec(max_executions=6)
        reference = WorkloadSession(tiny_workload, budget=budget, seed=0).run("random")
        tracer = Tracer()
        session = WorkloadSession(tiny_workload, budget=budget, seed=0, tracer=tracer)
        traced = session.run("random")
        assert {n: r.trace_signature() for n, r in traced.items()} == {
            n: r.trace_signature() for n, r in reference.items()
        }
        names = {record.name for record in tracer.spans()}
        assert {"optimize.suggest", "optimize.observe", "exec.request"} <= names
        assert "== observability report ==" in session.obs_report()

    @pytest.mark.slow
    def test_process_pool_worker_spans_are_adopted(self, tiny_workload):
        budget = BudgetSpec(max_executions=6)
        tracer = Tracer()
        with WorkloadSession(
            tiny_workload, budget=budget, seed=0, backend="process",
            max_workers=2, tracer=tracer,
        ) as session:
            session.run("random")
        spans = tracer.spans()
        worker_runs = [r for r in spans if r.name == "exec.run"]
        requests = {r.span_id: r for r in spans if r.name in ("exec.request", "exec.complete")}
        assert worker_runs, "worker spans never made it back to the scheduler"
        # Every adopted worker span hangs off a scheduler-side request span.
        assert all(run.parent_id in requests for run in worker_runs)
        ids = [r.span_id for r in spans]
        assert len(ids) == len(set(ids))


class TestServerHealthReport:
    def test_health_report_surfaces_execution_cache(self, tiny_database, tiny_query):
        config = ServeConfig(
            technique="bao", budget=BudgetSpec(max_executions=6),
            drift_factor=1.3, seed=0,
        )
        server = PlanServer(tiny_database.snapshot(), config=config)
        try:
            server.serve(tiny_query)
            health = server.health_report()
            cache = getattr(server.database, "execution_cache", None)
            if cache is not None:
                assert health["execution_cache"] == cache.counters.snapshot()
            assert server.summary()["health"] == health
        finally:
            server.close()

    def test_metrics_snapshot_carries_serve_counters(self, tiny_database, tiny_query):
        config = ServeConfig(
            technique="bao", budget=BudgetSpec(max_executions=6),
            drift_factor=1.3, seed=0,
        )
        server = PlanServer(tiny_database.snapshot(), config=config)
        try:
            server.serve(tiny_query)
            providers = server.metrics.snapshot()["providers"]
            assert providers["serve"]["arrivals"] == 1
            assert "admission" in providers and "backend_health" in providers
        finally:
            server.close()
