"""Fabric suite: wire protocol, lease failover, probation, replication, e2e.

Covers the socket wire format (length-prefixed pickle frames, error frames
that preserve node-side tracebacks, pickle failures that must not tear the
stream), the coordinator's lease machinery against scripted node doubles
(reassignment off a lost node, bounded attempts, probation/half-open rejoin,
degradation to the inline fallback, grouped batch dispatch), cross-node
cache-log replication, and end-to-end runs against real localhost node
processes: trace equivalence with inline execution, drop/kill recovery and
remote-traceback preservation across the socket boundary.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from concurrent.futures import Future

import pytest

from repro.core.protocol import BudgetSpec, ExecutionOutcome
from repro.exceptions import OptimizationError
from repro.exec import (
    ExecutionRequest,
    FabricBackend,
    InlineBackend,
    NetworkFaultConfig,
    NodeLostError,
    RemoteExecutionError,
    RemoteNodeBackend,
    backend_health,
    is_infra_failure,
    start_local_fabric,
)
from repro.exec.node import _wire_safe, start_node_process
from repro.exec.remote import recv_frame, send_frame
from repro.db.query import Query, TableRef
from repro.harness import WorkloadSession
from repro.plans.jointree import JoinTree


def _query(name="fabric_q"):
    return Query(name=name, table_refs=[TableRef("a#1", "a")], join_predicates=[])


def _request(name="fabric_q", plan=None):
    return ExecutionRequest(query=_query(name), plan=plan or JoinTree.left_deep(["a", "b"]))


def signatures(results):
    return {name: result.trace_signature() for name, result in results.items()}


class _FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ------------------------------------------------------------------ node double
class _ScriptedNode:
    """Node double with the surface the fabric drives.

    ``script`` entries are consumed one per submitted request: an exception
    instance fails that request's future, ``None`` completes it cleanly.
    An exhausted script means clean outcomes.
    """

    def __init__(self, name="node[0]", capacity=1, script=None, signature=None):
        self.name = name
        self._capacity = capacity
        self._script = list(script or [])
        self.signature = signature
        self.submitted = []
        self.batches = []
        self.offered = []
        self.on_events = None
        self._healthy = True
        self.closed = False

    def capacity(self):
        return self._capacity

    def healthy(self):
        return self._healthy

    def _complete(self, future):
        entry = self._script.pop(0) if self._script else None
        if entry is not None:
            future.set_exception(entry)
        else:
            future.set_result(ExecutionOutcome(latency=1.0))

    def submit(self, request):
        self.submitted.append(request)
        future = Future()
        self._complete(future)
        return future

    def submit_batch(self, requests):
        self.batches.append(list(requests))
        futures = []
        for request in requests:
            self.submitted.append(request)
            future = Future()
            self._complete(future)
            futures.append(future)
        return futures

    def offer_events(self, events):
        self.offered.extend(events)

    def close(self):
        self.closed = True


class _ImportingCache:
    """Cache double counting :meth:`import_outcomes` calls."""

    def __init__(self):
        self.imported = []

    def import_outcomes(self, events):
        self.imported.extend(events)
        return len(events)


class _CachedDatabase:
    def __init__(self):
        self.execution_cache = _ImportingCache()


class ExplodingDatabase:
    """Picklable database double whose executions always fail on the node."""

    def execute(self, query, plan, timeout=None):
        raise ValueError("synthetic node-side failure")


# ------------------------------------------------------------------ wire format
class TestWireProtocol:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(10.0)
        right.settimeout(10.0)
        return left, right

    def test_frame_roundtrip(self):
        left, right = self._pair()
        try:
            frame = ("execute", 7, "fabric_q", JoinTree.left_deep(["a", "b"]), None, 3, [])
            send_frame(left, frame)
            received = recv_frame(right)
        finally:
            left.close()
            right.close()
        assert received[:3] == ("execute", 7, "fabric_q")
        assert received[3].canonical() == frame[3].canonical()

    def test_pickle_failure_never_tears_the_stream(self):
        # Frames are pickled *before* any byte hits the socket: a payload
        # that cannot pickle raises on the sender and the stream stays
        # byte-aligned for the next frame.
        left, right = self._pair()
        try:
            with pytest.raises((pickle.PicklingError, TypeError, AttributeError)):
                send_frame(left, ("outcome", 1, lambda: None, [], {}))
            send_frame(left, ("pong", 5))
            assert recv_frame(right) == ("pong", 5)
        finally:
            left.close()
            right.close()

    def test_error_frame_preserves_remote_traceback(self):
        # The satellite contract: a node-side plan error crosses the socket
        # as RemoteExecutionError with the node's traceback string intact,
        # and stays a *plan* error (never retried as infrastructure).
        error = RemoteExecutionError(
            "node execution of query 'fabric_q' failed: ValueError: boom",
            remote_traceback="Traceback (most recent call last):\n  ...\nValueError: boom",
        )
        left, right = self._pair()
        try:
            send_frame(left, ("error", 42, error))
            kind, task_id, received = recv_frame(right)
        finally:
            left.close()
            right.close()
        assert (kind, task_id) == ("error", 42)
        assert isinstance(received, RemoteExecutionError)
        assert received.remote_traceback == error.remote_traceback
        assert "ValueError: boom" in received.remote_traceback
        assert not is_infra_failure(received)

    def test_wire_safe_wraps_foreign_exceptions(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        try:
            raise Unpicklable("original")
        except Unpicklable as exc:
            safe = _wire_safe(exc)
        assert isinstance(safe, RemoteExecutionError)
        assert "Unpicklable" in str(safe)
        pickle.loads(pickle.dumps(safe))  # guaranteed wire-safe

    def test_node_lost_error_is_infrastructure(self):
        assert is_infra_failure(NodeLostError("link down"))
        copy = pickle.loads(pickle.dumps(NodeLostError("link down")))
        assert is_infra_failure(copy)


# ------------------------------------------------------------------ lease failover
class TestLeaseFailover:
    def test_clean_submission_keeps_attempts_at_one(self):
        node = _ScriptedNode()
        fabric = FabricBackend([node])
        try:
            outcome = fabric.submit(_request()).result(timeout=10.0)
        finally:
            fabric.close()
        assert outcome.attempts == 1
        assert fabric.counters.lease_reassignments == 0

    def test_lost_node_reassigns_the_lease_and_stamps_attempts(self):
        flaky = _ScriptedNode(name="node[0]", script=[NodeLostError("link down")])
        steady = _ScriptedNode(name="node[1]")
        fabric = FabricBackend([flaky, steady], max_failures=3)
        try:
            outcome = fabric.submit(_request()).result(timeout=10.0)
        finally:
            fabric.close()
        assert outcome.attempts == 2  # reassignment is visible, not silent
        assert fabric.counters.lease_reassignments == 1
        # The retry landed on the *other* node (last_slot avoidance).
        assert len(flaky.submitted) == 1
        assert len(steady.submitted) == 1

    def test_plan_error_propagates_untouched_without_reassignment(self):
        node = _ScriptedNode(script=[RemoteExecutionError("plan died", remote_traceback="tb")])
        other = _ScriptedNode(name="node[1]")
        fabric = FabricBackend([node, other])
        try:
            exc = fabric.submit(_request()).exception(timeout=10.0)
        finally:
            fabric.close()
        assert isinstance(exc, RemoteExecutionError)
        assert exc.remote_traceback == "tb"
        assert fabric.counters.lease_reassignments == 0
        assert not other.submitted

    def test_exhausted_lease_gives_up_with_the_infra_error(self):
        node = _ScriptedNode(script=[NodeLostError("down"), NodeLostError("down")])
        fabric = FabricBackend([node], max_lease_attempts=2, max_failures=10)
        try:
            exc = fabric.submit(_request()).exception(timeout=10.0)
        finally:
            fabric.close()
        assert isinstance(exc, NodeLostError)
        assert fabric.counters.give_ups == 1

    def test_exhausted_lease_falls_back_inline_when_available(self):
        node = _ScriptedNode(script=[NodeLostError("down")] * 3)
        fallback = _ScriptedNode(name="fallback")
        fabric = FabricBackend([node], max_lease_attempts=1, fallback=fallback)
        try:
            outcome = fabric.submit(_request()).result(timeout=10.0)
        finally:
            fabric.close()
        assert outcome.attempts == 2
        assert fabric.counters.degraded_executions == 1
        assert len(fallback.submitted) == 1

    def test_batch_dispatches_as_one_group_to_one_node(self):
        a = _ScriptedNode(name="node[0]", capacity=4)
        b = _ScriptedNode(name="node[1]", capacity=4)
        fabric = FabricBackend([a, b])
        try:
            futures = fabric.submit_batch([_request(), _request(), _request()])
            for future in futures:
                future.result(timeout=10.0)
        finally:
            fabric.close()
        # Exactly one node received the whole group, batched.
        batched = a.batches or b.batches
        assert len(batched) == 1 and len(batched[0]) == 3
        assert not (a.batches and b.batches)

    def test_failed_batch_disbands_and_each_lease_reassigns(self):
        flaky = _ScriptedNode(
            name="node[0]", capacity=4, script=[NodeLostError("down")] * 2
        )
        steady = _ScriptedNode(name="node[1]", capacity=4)
        fabric = FabricBackend([flaky, steady], max_failures=5)
        try:
            futures = fabric.submit_batch([_request(), _request()])
            outcomes = [future.result(timeout=10.0) for future in futures]
        finally:
            fabric.close()
        assert all(outcome.attempts == 2 for outcome in outcomes)
        assert len(steady.submitted) == 2
        assert fabric.counters.give_ups == 0

    def test_double_settlement_is_impossible(self):
        # A lease whose node dies after the reply raced in must not resolve
        # the outer future twice; _settle tolerates the race structurally.
        node = _ScriptedNode()
        fabric = FabricBackend([node])
        try:
            future = fabric.submit(_request())
            outcome = future.result(timeout=10.0)
            # Simulate a late duplicate settlement attempt.
            from repro.exec.fabric import _settle

            _settle(future, exc=NodeLostError("late loss"))
            assert future.result() is outcome
        finally:
            fabric.close()


# ------------------------------------------------------------------ probation + degradation
class TestProbationAndDegradation:
    def test_failing_node_enters_probation_and_recovers_half_open(self):
        clock = _FakeClock()
        flaky = _ScriptedNode(name="node[0]", script=[NodeLostError("down")])
        steady = _ScriptedNode(name="node[1]")
        fabric = FabricBackend(
            [flaky, steady], max_failures=1, probation_seconds=5.0, clock=clock
        )
        try:
            fabric.submit(_request()).result(timeout=10.0)
            flaky_slot = fabric._slots[0]
            assert flaky_slot.on_probation(clock())
            assert not flaky_slot.eligible(clock())
            # Until probation lapses, new work routes around the node.
            fabric.submit(_request()).result(timeout=10.0)
            assert len(flaky.submitted) == 1
            # Probation lapses -> half-open: the node may take one probe.
            clock.advance(5.1)
            assert flaky_slot.probing(clock())
            assert flaky_slot.eligible(clock())
            fabric.submit(_request("probe_q")).result(timeout=10.0)
            # A successful probe fully clears probation state.
            assert flaky_slot.probation_until is None
            assert flaky_slot.probations == 0
        finally:
            fabric.close()

    def test_all_nodes_lost_degrades_to_fallback(self):
        node = _ScriptedNode()
        node._healthy = False
        fallback = _ScriptedNode(name="fallback")
        fabric = FabricBackend([node], fallback=fallback, degrade_after=0.0)
        try:
            outcome = fabric.submit(_request()).result(timeout=10.0)
        finally:
            fabric.close()
        assert isinstance(outcome, ExecutionOutcome)
        assert fabric.counters.degraded_executions == 1
        assert not node.submitted and len(fallback.submitted) == 1

    def test_no_nodes_and_no_fallback_leaves_work_queued_not_lost(self):
        node = _ScriptedNode()
        node._healthy = False
        fabric = FabricBackend([node])
        try:
            future = fabric.submit(_request())
            assert not future.done()
            # The node comes back; the queued lease drains.
            node._healthy = True
            fabric._dispatch()
            assert future.result(timeout=10.0).latency == 1.0
        finally:
            fabric.close()

    def test_constructor_validation(self):
        with pytest.raises(OptimizationError):
            FabricBackend([])
        with pytest.raises(OptimizationError):
            FabricBackend([_ScriptedNode()], max_failures=0)
        with pytest.raises(OptimizationError):
            FabricBackend([_ScriptedNode()], max_lease_attempts=0)


# ------------------------------------------------------------------ network faults (doubles)
class TestNetworkFaultDecisions:
    def test_rates_validated_and_deterministic(self):
        with pytest.raises(OptimizationError):
            NetworkFaultConfig(seed=0, drop_rate=0.9, partition_rate=0.2)
        config = NetworkFaultConfig(seed=3, drop_rate=0.3, kill_rate=0.2)
        requests = [_request(f"q{i}") for i in range(32)]
        first = [config.decide(request, 0) for request in requests]
        second = [config.decide(request, 0) for request in requests]
        assert first == second  # pure function of (seed, request, attempt)
        assert any(kind is not None for kind in first)
        assert any(kind is None for kind in first)
        other = NetworkFaultConfig(seed=4, drop_rate=0.3, kill_rate=0.2)
        assert first != [other.decide(request, 0) for request in requests]

    def test_max_faults_per_request_guarantees_clean_retries(self):
        config = NetworkFaultConfig(seed=0, drop_rate=1.0, max_faults_per_request=1)
        request = _request()
        assert config.decide(request, 0) == "drop"
        assert all(config.decide(request, attempt) is None for attempt in range(1, 8))

    def test_faults_without_link_hooks_run_clean_on_doubles(self):
        # Link-level faults (kill/drop/partition) need a real link; against
        # doubles without the inject_* hooks the dispatch must run clean
        # rather than crash.
        config = NetworkFaultConfig(seed=0, kill_rate=1.0, max_faults_per_request=2)
        node = _ScriptedNode()
        fabric = FabricBackend([node], network_faults=config)
        try:
            outcome = fabric.submit(_request()).result(timeout=10.0)
        finally:
            fabric.close()
        assert isinstance(outcome, ExecutionOutcome)


# ------------------------------------------------------------------ cache replication
class TestCacheReplication:
    def _events(self):
        return [(("fabric_q", "plan-x"), [(0.5, 10)], True, 10, 10, False)]

    def test_events_fan_out_to_signature_matched_peers_and_coordinator(self):
        source = _ScriptedNode(name="node[0]", signature=("sig", 1))
        match = _ScriptedNode(name="node[1]", signature=("sig", 1))
        fresh = _ScriptedNode(name="node[2]", signature=None)  # not yet handshaken
        mismatch = _ScriptedNode(name="node[3]", signature=("sig", 2))
        database = _CachedDatabase()
        fabric = FabricBackend([source, match, fresh, mismatch], database=database)
        try:
            events = self._events()
            fabric._on_node_events(source, events)
        finally:
            fabric.close()
        assert match.offered == events
        assert fresh.offered == events  # unknown signature: offer, node dedups
        assert mismatch.offered == []  # different data: never cross-pollinate
        assert source.offered == []  # never echoed back to the producer
        assert database.execution_cache.imported == events
        assert fabric.counters.events_imported == 1
        assert fabric.counters.events_replicated == 2

    def test_replication_can_be_disabled(self):
        source = _ScriptedNode(name="node[0]", signature=("sig", 1))
        peer = _ScriptedNode(name="node[1]", signature=("sig", 1))
        fabric = FabricBackend([source, peer], replicate_cache=False)
        try:
            fabric._on_node_events(source, self._events())
        finally:
            fabric.close()
        assert peer.offered == []
        assert fabric.counters.events_replicated == 0


# ------------------------------------------------------------------ health surface
class TestHealthSurface:
    def test_health_snapshot_shape(self):
        fabric = FabricBackend([_ScriptedNode(), _ScriptedNode(name="node[1]")])
        try:
            fabric.submit(_request()).result(timeout=10.0)
            report = fabric.health_snapshot()
        finally:
            fabric.close()
        assert report["submissions"] == 1 and report["completed"] == 1
        assert len(report["nodes"]) == 2
        for key in ("lease_reassignments", "give_ups", "pending_leases", "shipped_log_hits"):
            assert key in report

    def test_backend_health_walker_reports_the_fabric_layer(self):
        fabric = FabricBackend([_ScriptedNode()])
        try:
            report = backend_health(fabric)
        finally:
            fabric.close()
        assert "fabric" in report
        assert report["fabric"]["live_nodes"] == 1


# ------------------------------------------------------------------ real node processes
def _fabric_kwargs(**extra):
    kwargs = dict(heartbeat_interval=0.05, heartbeat_timeout=0.8)
    kwargs.update(extra)
    return kwargs


@pytest.mark.slow
class TestLocalFabricEndToEnd:
    def test_fabric_traces_match_inline_and_health_surfaces(self, tiny_workload):
        budget = BudgetSpec(max_executions=3)
        with WorkloadSession(tiny_workload, budget=budget, seed=0) as session:
            reference = session.run("random")
        backend = start_local_fabric(
            tiny_workload.database, tiny_workload.queries, num_nodes=2, **_fabric_kwargs()
        )
        with WorkloadSession(
            tiny_workload, budget=budget, seed=0, backend=backend
        ) as session:
            fabric_results = session.run("random")
            health = session.health_report()
        assert signatures(fabric_results) == signatures(reference)
        fabric_health = health["fabric"]
        assert fabric_health["live_nodes"] == 2
        assert fabric_health["completed"] == fabric_health["submissions"] > 0
        assert fabric_health["give_ups"] == 0
        names = {status["name"] for status in fabric_health["nodes"]}
        assert names == {"node[0]", "node[1]"}

    def test_remote_traceback_survives_the_socket(self):
        process, address = start_node_process()
        node = RemoteNodeBackend(
            address, ExplodingDatabase(), warmup=False, **_fabric_kwargs()
        )
        try:
            node.connect()
            exc = node.submit(_request("remote_q")).exception(timeout=30.0)
        finally:
            node.close()
            process.join(timeout=10.0)
        assert isinstance(exc, RemoteExecutionError)
        assert "remote_q" in str(exc)
        assert "ValueError: synthetic node-side failure" in exc.remote_traceback
        assert "in execute" in exc.remote_traceback  # the node-side frame
        assert not is_infra_failure(exc)

    def test_dropped_connection_reconnects_and_serves_again(self, tiny_workload):
        process, address = start_node_process()
        node = RemoteNodeBackend(
            address,
            tiny_workload.database,
            tiny_workload.queries,
            warmup=False,
            reconnect_base=0.02,
            **_fabric_kwargs(),
        )
        try:
            node.connect()
            request = ExecutionRequest(
                query=tiny_workload.queries[0],
                plan=JoinTree.left_deep(
                    [ref.alias for ref in tiny_workload.queries[0].table_refs]
                ),
            )
            before = node.submit(request).result(timeout=30.0)
            node.inject_drop()
            deadline = time.monotonic() + 20.0
            while not node.healthy() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert node.healthy(), "node did not reconnect after a dropped link"
            after = node.submit(request).result(timeout=30.0)
            assert node.counters.losses >= 1 and node.counters.connects >= 2
        finally:
            node.close()
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
        # Shared-nothing determinism: the same plan costs the same after a
        # reconnect (the replica survived on the node).
        assert after.latency == before.latency

    def test_killed_node_respawns_and_the_run_completes(self, tiny_workload):
        backend = start_local_fabric(
            tiny_workload.database,
            tiny_workload.queries,
            num_nodes=2,
            warmup=False,
            **_fabric_kwargs(),
        )
        try:
            request = ExecutionRequest(
                query=tiny_workload.queries[0],
                plan=JoinTree.left_deep(
                    [ref.alias for ref in tiny_workload.queries[0].table_refs]
                ),
            )
            backend.submit(request).result(timeout=60.0)
            # Chaos: hard-kill node 0 (os._exit in the process, no cleanup).
            backend._slots[0].node.inject_kill()
            outcomes = [backend.submit(request).result(timeout=60.0) for _ in range(4)]
            assert all(isinstance(outcome, ExecutionOutcome) for outcome in outcomes)
            assert backend.counters.give_ups == 0
        finally:
            backend.close()
