"""Tests for the plan VAE: corpus building, training, latent space behaviour."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.plans.encoding import PlanCodec, sequence_length
from repro.vae.dataset import PlanCorpus, build_plan_corpus, diversification_hint_sets
from repro.vae.latent import LatentSpace
from repro.vae.model import PlanVAE, VAEConfig
from repro.vae.training import sequence_accuracy, token_accuracy, train_vae


@pytest.fixture(scope="module")
def tiny_corpus(tiny_vocabulary):
    # Module-scoped corpus so VAE tests share one build.
    from repro.db.datagen import DataGenerator
    from repro.db.engine import Database
    from tests.conftest import _tiny_schema, _tiny_specs

    schema = _tiny_schema()
    database = Database(schema, DataGenerator(schema, _tiny_specs(), seed=7).generate())
    return build_plan_corpus(database, tiny_vocabulary, max_aliases=2, num_queries=40,
                             max_tables=4, seed=1)


@pytest.fixture(scope="module")
def trained_vae(tiny_corpus):
    model, report = train_vae(tiny_corpus, latent_dim=8, hidden_dim=96, steps=600, seed=0)
    return model, report


class TestCorpus:
    def test_corpus_shape(self, tiny_corpus, tiny_vocabulary):
        assert tiny_corpus.max_length == sequence_length(4)
        assert tiny_corpus.sequences.shape[1] == tiny_corpus.max_length
        assert tiny_corpus.num_sequences > 10
        assert tiny_corpus.sequences.max() < tiny_vocabulary.size

    def test_corpus_deduplicated(self, tiny_corpus):
        rows = {tuple(row) for row in tiny_corpus.sequences.tolist()}
        assert len(rows) == tiny_corpus.num_sequences

    def test_split_deterministic(self, tiny_corpus):
        train_a, test_a = tiny_corpus.split(seed=1)
        train_b, test_b = tiny_corpus.split(seed=1)
        assert np.array_equal(train_a, train_b) and np.array_equal(test_a, test_b)
        assert len(train_a) + len(test_a) == tiny_corpus.num_sequences

    def test_diversification_hint_sets(self):
        hints = diversification_hint_sets()
        assert len(hints) == 5
        assert len({h.name for h in hints}) == 5


@pytest.mark.slow
class TestPlanVAE:
    def test_encode_decode_shapes(self, tiny_corpus):
        config = VAEConfig(vocab_size=tiny_corpus.vocabulary.size, max_length=tiny_corpus.max_length,
                           latent_dim=6)
        model = PlanVAE(config)
        mu, logvar = model.encode(tiny_corpus.sequences[:5])
        assert mu.shape == (5, 6) and logvar.shape == (5, 6)
        logits = model.decode_logits(mu)
        assert logits.shape == (5, tiny_corpus.max_length, tiny_corpus.vocabulary.size)
        tokens = model.decode_tokens(mu)
        assert tokens.shape == (5, tiny_corpus.max_length)

    def test_wrong_length_rejected(self, tiny_corpus):
        config = VAEConfig(vocab_size=tiny_corpus.vocabulary.size, max_length=tiny_corpus.max_length)
        model = PlanVAE(config)
        with pytest.raises(ModelError):
            model.encode(np.zeros((2, tiny_corpus.max_length + 1), dtype=np.int64))

    def test_out_of_range_token_rejected(self, tiny_corpus):
        config = VAEConfig(vocab_size=tiny_corpus.vocabulary.size, max_length=tiny_corpus.max_length)
        model = PlanVAE(config)
        bad = np.full((1, tiny_corpus.max_length), tiny_corpus.vocabulary.size + 5)
        with pytest.raises(ModelError):
            model.encode(bad)

    def test_training_reduces_loss(self, trained_vae):
        _, report = trained_vae
        early = np.mean(report.losses[:20])
        late = np.mean(report.losses[-20:])
        assert late < early

    def test_reconstruction_beats_chance(self, trained_vae, tiny_corpus):
        model, report = trained_vae
        chance = 1.0 / tiny_corpus.vocabulary.size
        assert report.token_accuracy > 3 * chance
        assert 0.0 <= report.reconstruction_accuracy <= 1.0

    def test_accuracy_helpers_consistent(self, trained_vae, tiny_corpus):
        model, _ = trained_vae
        rows = tiny_corpus.sequences[:20]
        assert sequence_accuracy(model, rows) <= token_accuracy(model, rows) + 1e-9

    def test_weights_round_trip(self, trained_vae, tiny_corpus):
        model, _ = trained_vae
        weights = model.get_weights()
        clone = PlanVAE(model.config, seed=99)
        clone.set_weights(weights)
        rows = tiny_corpus.sequences[:4]
        assert np.array_equal(clone.reconstruct(rows), model.reconstruct(rows))

    def test_set_weights_shape_mismatch(self, trained_vae):
        model, _ = trained_vae
        weights = model.get_weights()
        weights[0] = weights[0][:, :1]
        clone = PlanVAE(model.config)
        with pytest.raises(ModelError):
            clone.set_weights(weights)

    def test_sampled_decoding_with_temperature(self, trained_vae, tiny_corpus):
        model, _ = trained_vae
        mu, _ = model.encode(tiny_corpus.sequences[:3])
        sampled = model.decode_tokens(mu, rng=np.random.default_rng(0), temperature=1.0)
        assert sampled.shape == (3, tiny_corpus.max_length)
        assert sampled.max() < tiny_corpus.vocabulary.size


class TestLatentSpace:
    @pytest.fixture(scope="class")
    def latent(self, trained_vae, tiny_corpus, tiny_codec):
        model, _ = trained_vae
        return LatentSpace.from_corpus(model, tiny_codec, tiny_corpus.sequences)

    def test_bounds_cover_corpus(self, latent, trained_vae, tiny_corpus):
        model, _ = trained_vae
        mu, _ = model.encode(tiny_corpus.sequences)
        lower, upper = latent.bounds()
        assert (mu >= lower - 1e-9).all() and (mu <= upper + 1e-9).all()
        assert (upper > lower).all()

    def test_embed_and_decode_plan(self, latent, tiny_database, tiny_query):
        plan = tiny_database.plan(tiny_query)
        vector = latent.embed_plan(plan, tiny_query)
        assert vector.shape == (latent.dim,)
        decoded = latent.decode_vector(vector, tiny_query)
        decoded.validate_for_query(tiny_query)

    def test_decode_random_vectors_always_valid(self, latent, tiny_query, rng):
        vectors = latent.random_vectors(10, rng)
        for plan in latent.decode_vectors(vectors, tiny_query):
            plan.validate_for_query(tiny_query)

    def test_clip(self, latent):
        lower, upper = latent.bounds()
        far = upper + 100.0
        clipped = latent.clip(far[None, :])
        assert (clipped <= upper + 1e-12).all()

    def test_empty_corpus_rejected(self, trained_vae, tiny_codec):
        model, _ = trained_vae
        with pytest.raises(ModelError):
            LatentSpace.from_corpus(model, tiny_codec, np.zeros((0, model.config.max_length)))
