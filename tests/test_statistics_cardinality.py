"""Tests for table statistics and the cardinality estimator."""

import numpy as np
import pytest

from repro.db.cardinality import CardinalityEstimator
from repro.db.catalog import Column, Table
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.db.relation import Relation
from repro.db.statistics import analyze_all, analyze_relation
from repro.exceptions import CatalogError, QueryError


def uniform_relation(name: str, rows: int, distinct: int) -> Relation:
    table = Table(name, [Column("id"), Column("v")])
    rng = np.random.default_rng(0)
    return Relation(table, {"id": np.arange(rows), "v": rng.integers(0, distinct, rows)})


class TestColumnStats:
    def test_basic_fields(self):
        stats = analyze_relation(uniform_relation("t", 1000, 10))
        column = stats.column("v")
        assert column.num_rows == 1000
        assert column.num_distinct == 10
        assert column.min_value == 0.0
        assert column.max_value == 9.0

    def test_eq_selectivity_roughly_uniform(self):
        stats = analyze_relation(uniform_relation("t", 5000, 10))
        sel = stats.column("v").selectivity("=", 3)
        assert 0.05 < sel < 0.2

    def test_mcv_catches_heavy_hitter(self):
        table = Table("t", [Column("id"), Column("v")])
        values = np.concatenate([np.zeros(900), np.arange(1, 101)])
        relation = Relation(table, {"id": np.arange(1000), "v": values})
        sel = analyze_relation(relation).column("v").selectivity("=", 0)
        assert sel == pytest.approx(0.9, abs=0.02)

    def test_range_selectivity_monotone(self):
        stats = analyze_relation(uniform_relation("t", 2000, 100)).column("v")
        low = stats.selectivity("<=", 10)
        high = stats.selectivity("<=", 80)
        assert low < high
        assert stats.selectivity(">=", 10) == pytest.approx(1.0 - stats.selectivity("<", 10), abs=0.05)

    def test_range_bounds_clamped(self):
        stats = analyze_relation(uniform_relation("t", 100, 10)).column("v")
        assert stats.selectivity("<", -5) == 0.0
        assert stats.selectivity("<=", 100) == 1.0

    def test_in_and_neq(self):
        stats = analyze_relation(uniform_relation("t", 1000, 4)).column("v")
        in_sel = stats.selectivity("in", (0, 1))
        assert 0.3 < in_sel < 0.7
        assert stats.selectivity("!=", 0) == pytest.approx(1.0 - stats.selectivity("=", 0))

    def test_empty_relation(self):
        table = Table("t", [Column("id")])
        stats = analyze_relation(Relation(table, {"id": np.array([], dtype=np.int64)}))
        assert stats.num_rows == 0
        assert stats.column("id").selectivity("=", 1) == 0.0

    def test_unknown_column(self):
        stats = analyze_relation(uniform_relation("t", 10, 2))
        with pytest.raises(CatalogError):
            stats.column("missing")


class TestCardinalityEstimator:
    @pytest.fixture()
    def setup(self):
        a = uniform_relation("a", 1000, 50)
        table_b = Table("b", [Column("id"), Column("a_id"), Column("flag")])
        rng = np.random.default_rng(1)
        b = Relation(
            table_b,
            {
                "id": np.arange(5000),
                "a_id": rng.integers(0, 1000, 5000),
                "flag": rng.integers(0, 4, 5000),
            },
        )
        stats = analyze_all({"a": a, "b": b})
        query = Query(
            "q",
            [TableRef("a#1", "a"), TableRef("b#1", "b")],
            [JoinPredicate("b#1", "a_id", "a#1", "id")],
            [FilterPredicate("b#1", "flag", "=", 1)],
        )
        return CardinalityEstimator(stats), query

    def test_base_estimate_with_filter(self, setup):
        estimator, query = setup
        estimate = estimator.base_estimate(query, "b#1")
        assert 800 < estimate.rows < 1800  # ~5000/4

    def test_base_estimate_without_filter(self, setup):
        estimator, query = setup
        assert estimator.base_estimate(query, "a#1").rows == pytest.approx(1000)

    def test_join_estimate_pk_fk(self, setup):
        estimator, query = setup
        rows = estimator.estimate_subset(query, frozenset(["a#1", "b#1"]))
        # |filtered b| * |a| / max(ndv) ~= 1250 * 1000 / 1000 = ~1250.
        assert 500 < rows < 3000

    def test_join_order_independent(self, setup):
        estimator, query = setup
        left, right, out = estimator.estimate_join(query, frozenset(["a#1"]), frozenset(["b#1"]))
        left2, right2, out2 = estimator.estimate_join(query, frozenset(["b#1"]), frozenset(["a#1"]))
        assert out == pytest.approx(out2)
        assert left == pytest.approx(right2)
        assert right == pytest.approx(left2)

    def test_cross_join_selectivity_is_one(self, setup):
        estimator, query = setup
        assert estimator.join_selectivity(query, {"a#1"}, set()) == 1.0

    def test_empty_subset_rejected(self, setup):
        estimator, query = setup
        with pytest.raises(QueryError):
            estimator.estimate_subset(query, frozenset())

    def test_missing_stats_rejected(self, setup):
        estimator, query = setup
        estimator.stats.pop("a")
        with pytest.raises(QueryError):
            estimator.base_estimate(query, "a#1")
