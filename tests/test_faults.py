"""Fault-tolerance suite: injection, supervision, probation, checkpoint/resume.

Covers the deterministic fault-injection harness (seeded schedules, crash /
transient short-circuit, hang / slow delayed delivery), the supervisor's
retry-with-backoff / watchdog / rebuild / degradation paths, the router's
probation and half-open re-probe recovery, remote-traceback preservation
across the process boundary, and the session-level checkpoint/resume
guarantee: a killed run resumed from its checkpoint finishes with traces
bit-for-bit identical to an uninterrupted run.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.core.config import ExecutionServiceConfig
from repro.core.protocol import BudgetSpec, ExecutionOutcome
from repro.core.result import OptimizationResult
from repro.db.plan_cache import ExecutionCache
from repro.db.query import Query, TableRef
from repro.exceptions import OptimizationError
from repro.exec import (
    BudgetAwarePriority,
    ExecutionRequest,
    FaultInjectionBackend,
    FaultInjectionConfig,
    HangTimeout,
    InjectedTransientError,
    InjectedWorkerCrash,
    InlineBackend,
    MultiBackendRouter,
    ProcessPoolBackend,
    RemoteExecutionError,
    SupervisedBackend,
    TransientBackendError,
    is_infra_failure,
    make_backend,
)
from repro.exec.router import BackendUnavailableError
from repro.harness import CheckpointManager, SessionCheckpoint, WorkloadSession
from repro.plans.jointree import JoinTree


# ------------------------------------------------------------------ doubles
class _ScriptedBackend:
    """Backend double: scripted per-submission outcomes, counted submissions."""

    def __init__(self, name="scripted", capacity=2, script=None):
        self.name = name
        self._capacity = capacity
        #: Per-submission script entries: an exception instance to fail with,
        #: or None for a clean outcome.  Exhausted script -> clean outcomes.
        self._script = list(script or [])
        self.submitted = []

    def capacity(self):
        return self._capacity

    def submit(self, request):
        self.submitted.append(request)
        future = Future()
        entry = self._script.pop(0) if self._script else None
        if entry is not None:
            future.set_exception(entry)
        else:
            future.set_result(ExecutionOutcome(latency=1.0))
        return future

    def healthy(self):
        return True

    def close(self):
        pass


class _RebuildableBackend(_ScriptedBackend):
    """Scripted backend that goes unhealthy on failure until rebuilt."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.rebuilds = 0
        self._broken = False

    def submit(self, request):
        future = super().submit(request)
        if future.exception() is not None and isinstance(future.exception(), BrokenExecutor):
            self._broken = True
        return future

    def healthy(self):
        return not self._broken

    def rebuild(self):
        self.rebuilds += 1
        self._broken = False


class _NeverResolves:
    """Backend whose futures never complete — a true hang."""

    name = "black-hole"

    def __init__(self):
        self.submitted = []

    def capacity(self):
        return 1

    def submit(self, request):
        self.submitted.append(request)
        return Future()

    def healthy(self):
        return True

    def close(self):
        pass


def _query(name="faulty_q"):
    return Query(name=name, table_refs=[TableRef("a#1", "a")], join_predicates=[])


def _request(name="faulty_q", plan=None):
    return ExecutionRequest(query=_query(name), plan=plan or JoinTree.left_deep(["a", "b"]))


def signatures(results):
    return {name: result.trace_signature() for name, result in results.items()}


# ------------------------------------------------------------------ fault schedule
class TestFaultInjectionConfig:
    def test_rates_validated(self):
        with pytest.raises(OptimizationError, match="crash_rate"):
            FaultInjectionConfig(crash_rate=1.5)
        with pytest.raises(OptimizationError, match="sum"):
            FaultInjectionConfig(crash_rate=0.6, hang_rate=0.6)
        with pytest.raises(OptimizationError, match="hang_seconds"):
            FaultInjectionConfig(hang_seconds=0.0)

    def test_decisions_are_deterministic_and_seed_sensitive(self):
        config = FaultInjectionConfig(seed=3, crash_rate=0.25, transient_rate=0.25)
        requests = [_request(f"q{i}") for i in range(40)]
        first = [config.decide(r, attempt=0) for r in requests]
        second = [config.decide(r, attempt=0) for r in requests]
        assert first == second  # pure function of (seed, query, plan, attempt)
        assert any(kind is not None for kind in first)  # schedule actually fires
        other_seed = FaultInjectionConfig(seed=4, crash_rate=0.25, transient_rate=0.25)
        assert [other_seed.decide(r, 0) for r in requests] != first

    def test_attempt_counter_advances_the_schedule(self):
        config = FaultInjectionConfig(seed=0, crash_rate=0.5)
        request = _request("flippy")
        decisions = {config.decide(request, attempt) for attempt in range(16)}
        assert decisions == {"crash", None}  # retries draw fresh deviates

    def test_max_faults_per_request_guarantees_clean_attempts(self):
        config = FaultInjectionConfig(seed=0, crash_rate=1.0, max_faults_per_request=2)
        request = _request()
        assert config.decide(request, 0) == "crash"
        assert config.decide(request, 1) == "crash"
        assert config.decide(request, 2) is None  # bounded: attempt 3 is clean


class TestFaultInjectionBackend:
    def test_crash_and_transient_short_circuit_inner(self):
        inner = _ScriptedBackend()
        config = FaultInjectionConfig(seed=0, crash_rate=0.5, transient_rate=0.5)
        backend = FaultInjectionBackend(inner, config)
        crashes = transients = 0
        for i in range(12):
            future = backend.submit(_request(f"q{i}"))
            exc = future.exception()
            assert isinstance(exc, (InjectedWorkerCrash, InjectedTransientError))
            assert is_infra_failure(exc)
            crashes += isinstance(exc, InjectedWorkerCrash)
            transients += isinstance(exc, InjectedTransientError)
        # Every submission faulted (rates sum to 1) without touching inner.
        assert inner.submitted == []
        assert backend.counters.crashes == crashes > 0
        assert backend.counters.transients == transients > 0
        assert backend.counters.total_faults == 12

    def test_slow_delivery_runs_for_real_but_arrives_late(self):
        inner = _ScriptedBackend()
        config = FaultInjectionConfig(seed=0, slow_rate=1.0, slow_seconds=0.05)
        backend = FaultInjectionBackend(inner, config)
        start = time.monotonic()
        future = backend.submit(_request())
        assert not future.done()  # the result is withheld...
        assert len(inner.submitted) == 1  # ...but the work already happened
        assert future.result(timeout=5.0).latency == 1.0
        assert time.monotonic() - start >= 0.04
        assert backend.counters.slowdowns == 1
        backend.close()

    def test_close_flushes_withheld_results(self):
        inner = _ScriptedBackend()
        config = FaultInjectionConfig(seed=0, hang_rate=1.0, hang_seconds=60.0)
        backend = FaultInjectionBackend(inner, config)
        future = backend.submit(_request())
        assert not future.done()
        backend.close()  # cancels the 60s timer, delivers the done result
        assert future.result(timeout=1.0).latency == 1.0


# ------------------------------------------------------------------ supervisor
class TestSupervisedBackend:
    def test_clean_path_stamps_attempts(self):
        supervised = SupervisedBackend(_ScriptedBackend())
        outcome = supervised.submit(_request()).result(timeout=5.0)
        assert outcome.latency == 1.0 and outcome.attempts == 1
        assert supervised.counters.retries == 0

    def test_retry_then_succeed_on_transient(self):
        inner = _ScriptedBackend(
            script=[TransientBackendError("blip"), BrokenExecutor("worker died"), None]
        )
        supervised = SupervisedBackend(inner, max_retries=3, backoff_base=0.001, backoff_max=0.01)
        outcome = supervised.submit(_request()).result(timeout=5.0)
        assert outcome.latency == 1.0 and outcome.attempts == 3
        assert len(inner.submitted) == 3
        report = supervised.report()
        assert report["retries"] == 2
        assert report["transients"] == 1 and report["crashes"] == 1
        assert report["give_ups"] == 0 and not report["degraded"]

    def test_gives_up_after_max_retries(self):
        inner = _ScriptedBackend(script=[TransientBackendError("blip")] * 10)
        supervised = SupervisedBackend(inner, max_retries=2, backoff_base=0.001, backoff_max=0.01)
        future = supervised.submit(_request())
        with pytest.raises(TransientBackendError):
            future.result(timeout=5.0)
        assert len(inner.submitted) == 3  # initial + 2 retries, bounded
        assert supervised.counters.give_ups == 1

    def test_genuine_plan_error_is_never_retried(self):
        inner = _ScriptedBackend(script=[RuntimeError("bad plan")])
        supervised = SupervisedBackend(inner, max_retries=5, backoff_base=0.001)
        future = supervised.submit(_request())
        with pytest.raises(RuntimeError, match="bad plan"):
            future.result(timeout=5.0)
        assert len(inner.submitted) == 1
        assert supervised.counters.retries == 0

    def test_hang_watchdog_fires_and_retry_lands_elsewhere(self):
        hang_then_recover = FaultInjectionBackend(
            _ScriptedBackend(),
            FaultInjectionConfig(seed=0, hang_rate=1.0, hang_seconds=60.0, max_faults_per_request=1),
        )
        supervised = SupervisedBackend(
            hang_then_recover, request_deadline=0.05, max_retries=2,
            backoff_base=0.001, backoff_max=0.01,
        )
        outcome = supervised.submit(_request()).result(timeout=10.0)
        assert outcome.latency == 1.0 and outcome.attempts == 2
        assert supervised.counters.hangs == 1
        supervised.close()

    def test_true_hang_exhausts_retries_with_hang_timeout(self):
        supervised = SupervisedBackend(
            _NeverResolves(), request_deadline=0.02, max_retries=1,
            backoff_base=0.001, backoff_max=0.01,
        )
        future = supervised.submit(_request())
        with pytest.raises(HangTimeout, match="supervision deadline"):
            future.result(timeout=10.0)
        assert supervised.counters.hangs == 2
        supervised.close()

    def test_pool_rebuild_on_broken_backend(self):
        inner = _RebuildableBackend(script=[BrokenExecutor("pool broke"), None])
        supervised = SupervisedBackend(inner, max_retries=2, backoff_base=0.001, backoff_max=0.01)
        outcome = supervised.submit(_request()).result(timeout=5.0)
        assert outcome.latency == 1.0
        assert inner.rebuilds == 1
        assert supervised.report()["pool_rebuilds_done"] == 1

    def test_degrades_to_fallback_when_capacity_lost(self):
        inner = _RebuildableBackend(script=[BrokenExecutor("gone")] * 10)
        fallback = _ScriptedBackend(name="fallback")
        supervised = SupervisedBackend(
            inner, max_retries=3, max_rebuilds=0, fallback=fallback,
            backoff_base=0.001, backoff_max=0.01,
        )
        outcome = supervised.submit(_request()).result(timeout=5.0)
        assert outcome.latency == 1.0
        assert supervised.degraded
        assert len(fallback.submitted) >= 1
        assert supervised.counters.fallback_attempts >= 1
        # Degradation is sticky: the next request goes straight to fallback.
        supervised.submit(_request("next_q")).result(timeout=5.0)
        assert len(inner.submitted) == 1

    def test_backoff_delay_is_deterministic_bounded_jitter(self):
        supervised = SupervisedBackend(
            _ScriptedBackend(), backoff_base=0.05, backoff_max=0.2, backoff_jitter=0.25
        )
        request = _request()
        delays = [supervised._backoff_delay(request, attempt) for attempt in range(6)]
        assert delays == [supervised._backoff_delay(request, a) for a in range(6)]
        for attempt, delay in enumerate(delays):
            base = min(0.2, 0.05 * 2**attempt)
            assert base <= delay <= base * 1.25  # capped + bounded jitter


# ------------------------------------------------------------------ router probation
class _FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRouterProbation:
    def test_exhausted_member_enters_probation_then_recovers_via_probe(self):
        clock = _FakeClock()
        flaky = _ScriptedBackend("flaky", script=[BrokenExecutor("dead")] * 2)
        spare = _ScriptedBackend("spare")
        router = MultiBackendRouter(
            [flaky, spare], max_failures=2, probation_seconds=30.0, clock=clock
        )
        # Two infra failures: requests land on spare, flaky goes on probation.
        for i in range(2):
            assert router.submit(_request(f"q{i}")).result().latency == 1.0
        statuses = {s.name: s for s in router.statuses()}
        assert statuses["flaky[0]"].on_probation and not statuses["flaky[0]"].healthy
        assert statuses["spare[1]"].retries == 2
        # While on probation the member takes no traffic.
        router.submit(_request("q2")).result()
        assert len(flaky.submitted) == 2
        # Probation expires -> half-open probe -> success clears the record.
        clock.advance(31.0)
        router.submit(_request("q3")).result()
        assert len(flaky.submitted) == 3  # the probe went to the probing member
        statuses = {s.name: s for s in router.statuses()}
        assert statuses["flaky[0]"].healthy and not statuses["flaky[0]"].on_probation
        assert statuses["flaky[0]"].failures == 0

    def test_failed_probe_doubles_the_next_probation(self):
        clock = _FakeClock()
        flaky = _ScriptedBackend("flaky", script=[BrokenExecutor("dead")] * 5)
        spare = _ScriptedBackend("spare")
        router = MultiBackendRouter(
            [flaky, spare], max_failures=1, probation_seconds=10.0, clock=clock
        )
        router.submit(_request("q0")).result()  # failure #1 -> probation (10s)
        clock.advance(11.0)
        router.submit(_request("q1")).result()  # probe fails -> probation doubles
        assert len(flaky.submitted) == 2
        clock.advance(11.0)  # 11 < 20: still on probation
        router.submit(_request("q2")).result()
        assert len(flaky.submitted) == 2
        clock.advance(10.0)  # 21 > 20: next probe allowed
        router.submit(_request("q3")).result()
        assert len(flaky.submitted) == 3

    def test_transient_error_charges_health_budget(self):
        clock = _FakeClock()
        flaky = _ScriptedBackend("flaky", script=[TransientBackendError("blip")])
        spare = _ScriptedBackend("spare")
        router = MultiBackendRouter(
            [flaky, spare], max_failures=1, probation_seconds=30.0, clock=clock
        )
        assert router.submit(_request()).result().latency == 1.0
        assert router.statuses()[0].on_probation  # transient == infra here

    def test_every_member_retired_raises_backend_unavailable(self):
        # Legacy mode (probation_seconds=None): retirement is permanent.
        members = [
            _ScriptedBackend(f"dead{i}", script=[BrokenExecutor("dead")] * 4)
            for i in range(2)
        ]
        router = MultiBackendRouter(members, max_failures=1)
        with pytest.raises(BackendUnavailableError, match="no healthy execution backend"):
            router.submit(_request()).result()
        assert not router.healthy()
        with pytest.raises(BackendUnavailableError):
            router.submit(_request("q2")).result()

    def test_genuine_error_does_not_dent_health_budget(self):
        clock = _FakeClock()
        failing = _ScriptedBackend("failing", script=[RuntimeError("bad plan")])
        spare = _ScriptedBackend("spare")
        router = MultiBackendRouter(
            [failing, spare], max_failures=1, probation_seconds=30.0, clock=clock
        )
        with pytest.raises(RuntimeError, match="bad plan"):
            router.submit(_request()).result()
        status = router.statuses()[0]
        assert status.healthy and status.failures == 0 and not status.on_probation
        assert spare.submitted == []  # no retry either

    def test_retry_then_succeed_on_flaky_member(self):
        clock = _FakeClock()
        flaky = _ScriptedBackend("flaky", script=[BrokenExecutor("hiccup")])
        router = MultiBackendRouter(
            [flaky, _ScriptedBackend("spare")], max_failures=3,
            probation_seconds=30.0, clock=clock,
        )
        assert router.submit(_request()).result().latency == 1.0
        status = router.statuses()[0]
        assert status.healthy and status.failures == 1  # charged but not retired


# ------------------------------------------------------------------ remote tracebacks
class ExplodingDatabase:
    """Picklable database double whose executions always fail in the worker."""

    def execute(self, query, plan, timeout=None):
        raise ValueError("synthetic worker-side failure")


class TestRemoteTracebacks:
    def test_remote_traceback_rides_the_exception(self):
        backend = ProcessPoolBackend(ExplodingDatabase(), max_workers=1, warmup=False)
        try:
            future = backend.submit(_request("remote_q"))
            exc = future.exception(timeout=60.0)
        finally:
            backend.close()
        assert isinstance(exc, RemoteExecutionError)
        assert "remote_q" in str(exc)
        assert "ValueError: synthetic worker-side failure" in exc.remote_traceback
        # The worker-side frame is in the traceback the scheduler sees.
        assert "in execute" in exc.remote_traceback
        assert not is_infra_failure(exc)  # a plan error, not infrastructure

    def test_remote_execution_error_pickles_with_traceback(self):
        error = RemoteExecutionError("boom", remote_traceback="Traceback ...\nValueError: x")
        copy = pickle.loads(pickle.dumps(error))
        assert isinstance(copy, RemoteExecutionError)
        assert copy.remote_traceback == error.remote_traceback
        assert "remote traceback" in str(copy)


# ------------------------------------------------------------------ checkpoint/resume
class _SessionKilled(BaseException):
    """Out-of-band kill signal — deliberately not an Exception subclass, so
    nothing in the stack can swallow it (like a real SIGKILL wouldn't be)."""


class _KillAfter:
    """Inline backend wrapper that kills the process after N executions."""

    name = "kill-after"

    def __init__(self, database, kills_at):
        self.inner = InlineBackend(database)
        self.kills_at = kills_at
        self.executed = 0

    def capacity(self):
        return 1

    def submit(self, request):
        if self.executed >= self.kills_at:
            raise _SessionKilled()
        self.executed += 1
        return self.inner.submit(request)

    def healthy(self):
        return True

    def close(self):
        pass


class TestCheckpointResume:
    def test_manager_roundtrip_and_atomicity(self, tmp_path):
        path = str(tmp_path / "session.ckpt")
        manager = CheckpointManager(path, every=3)
        assert manager.load() is None
        assert [manager.due() for _ in range(4)] == [False, False, True, False]
        checkpoint = SessionCheckpoint(
            technique="random", seed=7, query_names=["a", "b"], completed={"a": 1}
        )
        manager.save(checkpoint)
        loaded = manager.load()
        assert loaded is not None and loaded.completed == {"a": 1}
        assert loaded.matches("random", 7, ["a", "b"])
        assert not loaded.matches("random", 8, ["a", "b"])
        assert not loaded.matches("bao", 7, ["a", "b"])
        manager.clear()
        assert manager.load() is None
        manager.clear()  # idempotent

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        path = tmp_path / "session.ckpt"
        path.write_bytes(b"not a pickle")
        assert CheckpointManager(str(path)).load() is None

    def test_cache_outcome_export_import_roundtrip(self):
        source = ExecutionCache()
        key = (("q-fingerprint",), "canonical-plan")
        source.store_outcome(key, [("cpu", 1.5), ("__node__", 0.0)], True, None, 42)
        target = ExecutionCache()
        assert target.import_outcomes(source.export_outcomes()) == 1
        entry = target.lookup_outcome(key, timeout=None)
        assert entry is not None and entry.completed and entry.output_rows == 42
        assert entry.events == [("cpu", 1.5), ("__node__", 0.0)]

    def test_killed_session_resumes_bit_for_bit(self, tiny_workload, tmp_path):
        budget = BudgetSpec(max_executions=6)
        path = str(tmp_path / "session.ckpt")

        # Reference: uninterrupted run, no checkpointing.
        with WorkloadSession(tiny_workload, budget=budget, seed=5) as session:
            reference = signatures(session.run("random"))
        total = sum(
            r.num_executions for r in WorkloadSession(
                tiny_workload, budget=budget, seed=5
            ).run("random").values()
        )

        # Killed run: the backend raises after 5 executions, checkpointing
        # after every observation.
        killer = _KillAfter(tiny_workload.database, kills_at=5)
        session = WorkloadSession(
            tiny_workload, budget=budget, seed=5, backend=killer,
            checkpoint_path=path, checkpoint_every=1,
        )
        with pytest.raises(_SessionKilled):
            session.run("random")
        assert killer.executed == 5

        # Resume: a fresh session (fresh optimizer, fresh backend) picks up
        # the checkpoint and completes without redoing finished work.
        resumed_backend = _KillAfter(tiny_workload.database, kills_at=10**9)
        with WorkloadSession(
            tiny_workload, budget=budget, seed=5, backend=resumed_backend,
            checkpoint_path=path, checkpoint_every=1,
        ) as session:
            resumed = signatures(session.run("random"))
        assert resumed == reference  # bit-for-bit
        assert resumed_backend.executed == total - 5  # completed work not re-paid
        import os
        assert not os.path.exists(path)  # cleared on completion

    def test_checkpoint_pins_to_sequential_scheduler(self, tiny_workload, tmp_path):
        session = WorkloadSession(
            tiny_workload, budget=BudgetSpec(max_executions=3), seed=1,
            exec_config=ExecutionServiceConfig(backend="thread", max_workers=2),
            checkpoint_path=str(tmp_path / "c.ckpt"), checkpoint_every=2,
        )
        with session:
            results = session.run("random")
        assert set(results) == {q.name for q in tiny_workload.queries}


# ------------------------------------------------------------------ session health report
class TestHealthReport:
    def test_layers_surface_in_report(self, tiny_workload):
        config = ExecutionServiceConfig(
            backend="inline", replicas=2, supervised=True,
            fault_injection=FaultInjectionConfig(seed=0, transient_rate=0.3),
            max_retries=4, backoff_base=0.001, backoff_max=0.01,
        )
        with WorkloadSession(
            tiny_workload, budget=BudgetSpec(max_executions=4),
            exec_config=config, interleave=False,
        ) as session:
            results = session.run("random")
            report = session.health_report()
        assert set(results) == {q.name for q in tiny_workload.queries}
        assert report["supervisor"]["submissions"] > 0
        assert report["supervisor"]["give_ups"] == 0
        assert report["faults"]["clean"] > 0
        assert len(report["router"]) == 2
        assert all(set(m) >= {"occupancy", "failures", "healthy", "retries"}
                   for m in report["router"])

    def test_make_backend_wires_supervision_and_faults(self, tiny_workload):
        config = ExecutionServiceConfig(
            backend="inline", supervised=True, request_deadline=5.0,
            fault_injection=FaultInjectionConfig(seed=1, crash_rate=0.2),
        )
        backend = make_backend(config, tiny_workload.database, tiny_workload.queries)
        try:
            assert isinstance(backend, SupervisedBackend)
            assert isinstance(backend.inner, FaultInjectionBackend)
            assert isinstance(backend.inner.inner, InlineBackend)
            assert backend.fallback is None  # inline primary needs no fallback
        finally:
            backend.close()

    def test_comparison_run_carries_backend_health(self, tiny_workload):
        from repro.harness import run_comparison

        run = run_comparison(
            tiny_workload, tiny_workload.queries, BudgetSpec(max_executions=3),
            techniques=["random"],
            exec_config=ExecutionServiceConfig(backend="inline", supervised=True),
        )
        assert "supervisor" in run.backend_health


# ------------------------------------------------------------------ policy robustness
class _ExplodingPredictor:
    def predicted_improvement(self, state):
        raise FloatingPointError("singular posterior")


def _policy_state(name, latencies):
    result = OptimizationResult(query_name=name, technique="X")
    for latency in latencies:
        result.record(JoinTree.left_deep(["a", "b"]), latency, censored=False, timeout=None)
    from repro.core.protocol import OptimizerState

    return OptimizerState(
        query=Query(name=name, table_refs=[TableRef("a#1", "a")], join_predicates=[]),
        result=result,
        budget=BudgetSpec(max_executions=10),
    )


class TestPolicyRobustness:
    def test_budget_aware_survives_predictor_exceptions(self):
        states = [_policy_state("fast", [0.5]), _policy_state("slow", [50.0])]
        # The predictor explodes; scheduling falls back to worst-incumbent
        # priority instead of killing the session.
        assert BudgetAwarePriority().select(states, _ExplodingPredictor()) == 1


# ------------------------------------------------------------------ supervisor over fabric
class _ScriptedFabricNode:
    """Minimal node double for driving a FabricBackend from the supervisor."""

    def __init__(self, name="node[0]", script=None):
        self.name = name
        self._script = list(script or [])
        self.submitted = []

    def capacity(self):
        return 1

    def healthy(self):
        return True

    def submit(self, request):
        self.submitted.append(request)
        future = Future()
        entry = self._script.pop(0) if self._script else None
        if entry is not None:
            future.set_exception(entry)
        else:
            future.set_result(ExecutionOutcome(latency=1.0))
        return future

    def close(self):
        pass


class TestSupervisedFabric:
    """The supervisor's per-request semantics survive a fabric underneath."""

    def _supervised_fabric(self, script):
        from repro.exec import FabricBackend, NodeLostError  # noqa: F401

        fabric = FabricBackend(
            [_ScriptedFabricNode(script=script)],
            max_lease_attempts=1,  # fabric-level failover off: supervisor owns retry
            max_failures=10,
        )
        supervised = SupervisedBackend(
            fabric, max_retries=3, backoff_base=0.001, backoff_max=0.01
        )
        return supervised, fabric

    def test_batch_submission_falls_back_per_request_and_retries(self):
        from repro.exec import NodeLostError
        from repro.exec.backend import submit_request_batch

        # The node loses the first request's lease; the fabric (failover
        # disabled) surfaces the infra failure and the *supervisor* retries.
        supervised, fabric = self._supervised_fabric([NodeLostError("link down")])
        try:
            # The supervisor deliberately has no submit_batch: batches must
            # disband so each request keeps its own retry/fail-over story.
            assert not hasattr(supervised, "submit_batch")
            futures = submit_request_batch(supervised, [_request("q_a"), _request("q_b")])
            outcomes = [future.result(timeout=30.0) for future in futures]
        finally:
            supervised.close()
        assert outcomes[0].attempts == 2  # retried after the lease was lost
        assert outcomes[1].attempts == 1  # clean sibling: untouched
        assert supervised.counters.retries == 1
        assert supervised.counters.give_ups == 0
        assert fabric.counters.give_ups == 1  # the fabric handed the failure up

    def test_fabric_infra_failure_is_retryable_by_the_supervisor(self):
        from repro.exec import NodeLostError

        assert is_infra_failure(NodeLostError("down"))
        supervised, _ = self._supervised_fabric(
            [NodeLostError("down"), NodeLostError("down")]
        )
        try:
            outcome = supervised.submit(_request()).result(timeout=30.0)
        finally:
            supervised.close()
        assert outcome.attempts == 3


# ------------------------------------------------------------------ checkpoint discard logging
class TestCheckpointDiscardLogging:
    def _capture(self):
        import logging

        records = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = _Capture(level=logging.DEBUG)
        # The repro root logger does not propagate to the stdlib root, so
        # caplog never sees it; attach directly.
        logger = logging.getLogger("repro")
        previous = logger.level
        logger.addHandler(handler)
        logger.setLevel(logging.DEBUG)
        return records, handler, logger, previous

    def test_corrupt_artifact_discard_is_logged(self, tmp_path):
        from repro.harness.checkpoint import tolerant_pickle_load

        path = tmp_path / "session.ckpt"
        path.write_bytes(b"not a pickle at all")
        records, handler, logger, previous = self._capture()
        try:
            assert tolerant_pickle_load(str(path)) is None
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous)
        warnings = [r for r in records if r.levelname == "WARNING"]
        assert len(warnings) == 1
        message = warnings[0].getMessage()
        # What was dropped, how big it was, and why.
        assert "discarding corrupt artifact" in message
        assert str(path) in message
        assert f"{len(b'not a pickle at all')} bytes" in message
        assert "UnpicklingError" in message

    def test_cold_start_is_only_a_debug_line(self, tmp_path):
        from repro.harness.checkpoint import tolerant_pickle_load

        records, handler, logger, previous = self._capture()
        try:
            assert tolerant_pickle_load(str(tmp_path / "absent.ckpt")) is None
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous)
        assert all(r.levelname == "DEBUG" for r in records)
        assert any("cold start" in r.getMessage() for r in records)
