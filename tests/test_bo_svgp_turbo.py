"""Tests for the censored SVGP, trust regions, acquisition functions and the BO engine."""

import numpy as np
import pytest

from repro.bo.acquisition import expected_improvement, lower_confidence_bound, thompson_sample
from repro.bo.loop import BOEngine, BOEngineConfig
from repro.bo.svgp import CensoredSVGP, SVGPConfig
from repro.bo.turbo import TrustRegion, global_candidates
from repro.exceptions import ModelError, OptimizationError


def branin_like(x: np.ndarray) -> np.ndarray:
    x = np.atleast_2d(x)
    return ((x[:, 0] - 0.3) ** 2 + (x[:, 1] - 0.7) ** 2) * 5.0


class TestCensoredSVGP:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(0)
        x = rng.random((60, 2))
        y = branin_like(x)
        censored = np.zeros(60, dtype=bool)
        model = CensoredSVGP(config=SVGPConfig(num_inducing=24, train_steps=120))
        model.fit(x, y, censored)
        return model, x, y

    def test_predict_tracks_objective(self, fitted):
        model, x, y = fitted
        mean, std = model.predict(x)
        correlation = np.corrcoef(mean, y)[0, 1]
        assert correlation > 0.7
        assert (std > 0).all()

    def test_posterior_samples_shape(self, fitted, rng):
        model, x, _ = fitted
        samples = model.posterior_samples(x[:10], 32, rng)
        assert samples.shape == (32, 10)
        assert samples.std() > 0

    def test_censored_observations_push_mean_up(self):
        rng = np.random.default_rng(1)
        x = rng.random((40, 2))
        y = np.full(40, 1.0)
        censored = np.zeros(40, dtype=bool)
        censored[:20] = True
        y[:20] = 3.0  # "at least 3"
        model = CensoredSVGP(config=SVGPConfig(num_inducing=20, train_steps=150))
        model.fit(x, y, censored)
        mean_censored, _ = model.predict(x[:20])
        mean_plain, _ = model.predict(x[20:])
        assert mean_censored.mean() > mean_plain.mean()

    def test_fantasize_restores_state(self, fitted):
        model, x, _ = fitted
        before_mean, before_std = model.predict(x[:5])
        model.fantasize(x[0], censor_level=10.0, x_query=x[:5], steps=10)
        after_mean, after_std = model.predict(x[:5])
        assert np.allclose(before_mean, after_mean)
        assert np.allclose(before_std, after_std)

    def test_elbo_finite(self, fitted):
        model, _, _ = fitted
        assert np.isfinite(model.elbo())

    def test_requires_fit(self):
        with pytest.raises(ModelError):
            CensoredSVGP().predict(np.zeros((1, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            CensoredSVGP().fit(np.zeros((0, 2)), np.zeros(0), np.zeros(0, dtype=bool))


class TestTrustRegion:
    def test_expands_after_successes(self):
        region = TrustRegion(dim=4, success_tolerance=2)
        initial = region.length
        region.update(True)
        region.update(True)
        assert region.length > initial

    def test_shrinks_after_failures(self):
        region = TrustRegion(dim=4, failure_tolerance=2)
        initial = region.length
        region.update(False)
        region.update(False)
        assert region.length < initial

    def test_restart_on_collapse(self):
        region = TrustRegion(dim=2, failure_tolerance=1, length=0.01, length_min=0.02)
        region.update(False)
        assert region.restarts == 1
        assert region.length == pytest.approx(0.8)

    def test_counters_reset_on_opposite_outcome(self):
        region = TrustRegion(dim=3, success_tolerance=3)
        region.update(True)
        region.update(False)
        assert region.success_count == 0
        assert region.failure_count == 1

    def test_candidates_inside_region_and_cube(self, rng):
        region = TrustRegion(dim=6, length=0.4)
        center = np.full(6, 0.5)
        candidates = region.candidates(center, 100, rng)
        assert candidates.shape == (100, 6)
        assert (candidates >= 0).all() and (candidates <= 1).all()
        assert (np.abs(candidates - center) <= 0.2 + 1e-12).all()

    def test_candidates_perturb_at_least_one_dim(self, rng):
        region = TrustRegion(dim=30, length=0.5)
        center = np.full(30, 0.5)
        candidates = region.candidates(center, 50, rng, perturbation_probability=0.01)
        changed = (candidates != center).sum(axis=1)
        assert (changed >= 1).all()

    def test_global_candidates_cover_cube(self, rng):
        candidates = global_candidates(3, 200, rng)
        assert candidates.min() >= 0 and candidates.max() <= 1
        assert candidates.std() > 0.2


class TestAcquisition:
    class _FakeSurrogate:
        def predict(self, x):
            x = np.atleast_2d(x)
            return x[:, 0], np.full(len(x), 0.1)

        def posterior_samples(self, x, count, rng):
            mean, std = self.predict(x)
            return mean[None, :] + rng.standard_normal((count, len(mean))) * std

    def test_thompson_prefers_low_mean(self, rng):
        surrogate = self._FakeSurrogate()
        candidates = np.array([[0.9, 0.0], [0.1, 0.0], [0.5, 0.0]])
        picks = [thompson_sample(surrogate, candidates, rng) for _ in range(20)]
        assert max(set(picks), key=picks.count) == 1

    def test_expected_improvement_prefers_low_mean(self):
        surrogate = self._FakeSurrogate()
        candidates = np.array([[0.9, 0.0], [0.1, 0.0]])
        ei = expected_improvement(surrogate, candidates, best_value=0.5)
        assert ei[1] > ei[0]

    def test_lcb(self):
        surrogate = self._FakeSurrogate()
        scores = lower_confidence_bound(surrogate, np.array([[0.5, 0.0]]), kappa=2.0)
        assert scores[0] == pytest.approx(0.5 - 0.2)


class TestBOEngine:
    def make_engine(self, **kwargs):
        return BOEngine(np.zeros(2), np.ones(2), config=BOEngineConfig(**kwargs), seed=0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(OptimizationError):
            BOEngine(np.ones(2), np.zeros(2))

    def test_invalid_surrogate_rejected(self):
        with pytest.raises(OptimizationError):
            BOEngineConfig(surrogate="nope")

    def test_add_and_best(self):
        engine = self.make_engine()
        engine.add_observation(np.array([0.2, 0.2]), 1.0)
        engine.add_observation(np.array([0.8, 0.8]), 0.5)
        engine.add_observation(np.array([0.5, 0.5]), 2.0, censored=True)
        assert engine.best_value() == pytest.approx(0.5)
        assert np.allclose(engine.best_point(), [0.8, 0.8])
        assert engine.num_observations == 3

    def test_wrong_dimension_rejected(self):
        engine = self.make_engine()
        with pytest.raises(OptimizationError):
            engine.add_observation(np.array([0.1]), 1.0)

    def test_fit_requires_observations(self):
        with pytest.raises(OptimizationError):
            self.make_engine().fit()

    def test_suggest_within_bounds(self, rng):
        engine = self.make_engine(num_candidates=64)
        for _ in range(6):
            x = engine.suggest()
            assert (x >= 0).all() and (x <= 1).all()
            engine.add_observation(x, float(branin_like(x)[0]))

    def test_optimization_progresses_toward_minimum(self):
        engine = self.make_engine(num_candidates=128)
        rng = np.random.default_rng(1)
        for _ in range(5):
            x = rng.random(2)
            engine.add_observation(x, float(branin_like(x)[0]))
        for _ in range(25):
            x = engine.suggest()
            engine.add_observation(x, float(branin_like(x)[0]))
        best = engine.best_point()
        assert np.linalg.norm(best - np.array([0.3, 0.7])) < 0.35

    def test_global_mode(self):
        engine = self.make_engine(use_trust_region=False, num_candidates=32)
        engine.add_observation(np.array([0.5, 0.5]), 1.0)
        engine.add_observation(np.array([0.4, 0.4]), 0.8)
        x = engine.suggest()
        assert x.shape == (2,)

    def test_fantasize_censored(self):
        engine = self.make_engine()
        rng = np.random.default_rng(2)
        for _ in range(8):
            x = rng.random(2)
            engine.add_observation(x, float(branin_like(x)[0]))
        point = np.array([0.5, 0.5])
        before_mean, _ = engine.predict(point)
        mean, std = engine.fantasize_censored(point, censor_level=10.0)
        assert mean > before_mean[0]
        assert std >= 0
