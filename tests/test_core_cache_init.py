"""Tests for initialization strategies, the plan cache and the online planner."""

import pytest

from repro.core.cache import OnlinePlanner, PlanCache, amortized_benefit
from repro.core.initialization import (
    bao_initialization,
    build_initial_plans,
    default_initialization,
    llm_initialization,
    random_initialization,
)
from repro.core.result import OptimizationResult
from repro.exceptions import OptimizationError
from repro.plans.sampling import random_join_trees


class TestInitialization:
    def test_bao_initialization_deduplicated(self, tiny_database, tiny_query):
        plans = bao_initialization(tiny_database, tiny_query)
        assert 1 <= len(plans) <= 49
        keys = [plan.canonical() for plan, _ in plans]
        assert len(keys) == len(set(keys))
        assert all(source == "init:bao" for _, source in plans)

    def test_bao_contains_default_plan(self, tiny_database, tiny_query):
        default = tiny_database.plan(tiny_query).canonical()
        plans = {plan.canonical() for plan, _ in bao_initialization(tiny_database, tiny_query)}
        assert default in plans

    def test_default_initialization(self, tiny_database, tiny_query):
        plans = default_initialization(tiny_database, tiny_query)
        assert len(plans) == 1
        assert plans[0][1] == "init:default"

    def test_random_initialization(self, tiny_query):
        plans = random_initialization(tiny_query, 10, seed=1)
        assert 1 <= len(plans) <= 10
        for plan, source in plans:
            plan.validate_for_query(tiny_query)
            assert source == "init:random"

    def test_llm_initialization_uses_generator(self, tiny_query):
        class FakeGenerator:
            def generate_plans(self, query, count):
                return [plan for plan in random_join_trees(query, count, seed=0)]

        plans = llm_initialization(FakeGenerator(), tiny_query, 5)
        assert plans and all(source == "init:llm" for _, source in plans)

    def test_build_dispatch(self, tiny_database, tiny_query):
        assert build_initial_plans("bao", tiny_database, tiny_query)
        assert build_initial_plans("default", tiny_database, tiny_query)
        assert build_initial_plans("random", tiny_database, tiny_query, count=5)
        provided = [tiny_database.plan(tiny_query)]
        assert build_initial_plans("provided", tiny_database, tiny_query, provided=provided)

    def test_build_llm_requires_generator(self, tiny_database, tiny_query):
        with pytest.raises(OptimizationError):
            build_initial_plans("llm", tiny_database, tiny_query)

    def test_build_provided_requires_plans(self, tiny_database, tiny_query):
        with pytest.raises(OptimizationError):
            build_initial_plans("provided", tiny_database, tiny_query)

    def test_build_unknown_strategy(self, tiny_database, tiny_query):
        with pytest.raises(OptimizationError):
            build_initial_plans("nope", tiny_database, tiny_query)


class TestPlanCache:
    def make_result(self, tiny_database, tiny_query):
        result = OptimizationResult(tiny_query.name, "BayesQO")
        plan = tiny_database.plan(tiny_query)
        latency = tiny_database.execute(tiny_query, plan).latency
        result.record(plan, latency, censored=False, timeout=None)
        return result

    def test_store_and_lookup(self, tiny_database, tiny_query):
        cache = PlanCache()
        assert cache.lookup(tiny_query) is None
        cache.store(tiny_query, self.make_result(tiny_database, tiny_query))
        entry = cache.lookup(tiny_query)
        assert entry is not None and entry.offline_latency > 0
        assert tiny_query in cache and len(cache) == 1

    def test_store_plan_direct(self, tiny_database, tiny_query):
        cache = PlanCache()
        plan = tiny_database.plan(tiny_query)
        cache.store_plan(tiny_query, plan, latency=1.0)
        assert cache.lookup(tiny_query).plan.canonical() == plan.canonical()

    def test_online_planner_prefers_cache(self, tiny_database, tiny_query):
        planner = OnlinePlanner(tiny_database)
        plan, source = planner.plan_for(tiny_query)
        assert source == "default"
        planner.cache.store(tiny_query, self.make_result(tiny_database, tiny_query))
        plan, source = planner.plan_for(tiny_query)
        assert source == "cache"

    def test_online_planner_execution_updates_hits(self, tiny_database, tiny_query):
        planner = OnlinePlanner(tiny_database)
        planner.cache.store(tiny_query, self.make_result(tiny_database, tiny_query))
        planner.execute(tiny_query)
        entry = planner.cache.lookup(tiny_query)
        assert entry.hits == 1
        assert entry.last_observed_latency is not None
        assert not planner.should_reoptimize(tiny_query)

    def test_regression_flags_reoptimization(self, tiny_database, tiny_query):
        planner = OnlinePlanner(tiny_database, regression_factor=0.0001)
        planner.cache.store(tiny_query, self.make_result(tiny_database, tiny_query))
        planner.execute(tiny_query)
        assert planner.should_reoptimize(tiny_query)
        planner.clear_reoptimization_flag(tiny_query)
        assert not planner.should_reoptimize(tiny_query)

    def test_amortized_benefit(self):
        assert amortized_benefit(10.0, 2.0, 100.0, 20) == pytest.approx(60.0)
        assert amortized_benefit(10.0, 2.0, 100.0, 5) < 0
        with pytest.raises(OptimizationError):
            amortized_benefit(10.0, 2.0, 100.0, -1)
