"""Integration tests for the BayesQO optimizer on the tiny database."""

import pytest

from repro.core import BayesQO, BayesQOConfig, reoptimize
from repro.core.cache import PlanCache
from repro.exceptions import OptimizationError


@pytest.fixture(scope="module")
def bayes(tiny_database, tiny_schema_model):
    config = BayesQOConfig(max_executions=30, num_candidates=64, seed=0)
    return BayesQO(tiny_database, tiny_schema_model, config=config)


@pytest.fixture(scope="module")
def run(bayes, tiny_query):
    return bayes.optimize(tiny_query)


@pytest.mark.slow
class TestBayesQORun:
    def test_budget_respected(self, run):
        assert 1 <= run.num_executions <= 30

    def test_best_plan_valid(self, run, tiny_query):
        run.best_plan.validate_for_query(tiny_query)
        assert run.best_latency > 0

    def test_initialization_contains_bao_plans(self, run):
        assert run.sources().get("init:bao", 0) >= 1

    def test_bo_phase_ran(self, run):
        assert run.sources().get("bo", 0) >= 1

    def test_never_worse_than_bao_best(self, bayes, run, tiny_query):
        from repro.baselines import BaoOptimizer

        bao_best = BaoOptimizer(bayes.database).optimize(tiny_query).best_latency
        assert run.best_latency <= bao_best + 1e-9

    def test_cumulative_cost_monotone(self, run):
        costs = [record.cumulative_cost for record in run.trace]
        assert costs == sorted(costs)

    def test_overhead_tracked(self, bayes):
        breakdown = bayes.overhead.per_iteration()
        assert set(breakdown) == {
            "surrogate_update", "calculate_timeout", "vae_sampling", "generate_candidates",
        }
        assert all(value >= 0 for value in breakdown.values())

    def test_time_budget_stops_early(self, bayes, tiny_query):
        result = bayes.optimize(tiny_query, time_budget=0.001)
        assert result.total_cost >= 0.001 or result.num_executions <= 2

    def test_three_table_query(self, bayes, tiny_three_table_query):
        result = bayes.optimize(tiny_three_table_query, max_executions=15)
        result.best_plan.validate_for_query(tiny_three_table_query)

    def test_empty_initialization_rejected(self, bayes, tiny_query):
        with pytest.raises(OptimizationError):
            bayes.optimize(tiny_query, initial_plans=[])


class TestCacheAndReoptimization:
    def test_result_feeds_plan_cache(self, run, tiny_query):
        cache = PlanCache()
        entry = cache.store(tiny_query, run)
        assert entry.offline_latency == pytest.approx(run.best_latency)

    def test_reoptimize_with_past_plan(self, bayes, run, tiny_query):
        outcome = reoptimize(bayes, tiny_query, run.best_plan, max_executions=15)
        assert outcome.past_plan_latency > 0
        assert outcome.best_latency <= outcome.past_plan_latency + 1e-9
        sources = outcome.result.sources()
        assert "init:past_plan" in sources

    def test_reoptimize_without_bao(self, bayes, run, tiny_query):
        outcome = reoptimize(bayes, tiny_query, run.best_plan, max_executions=8, include_bao=False)
        assert outcome.result.num_executions <= 8


@pytest.mark.slow
class TestConfigVariants:
    @pytest.mark.parametrize("strategy", ["none", "percentile", "best_seen", "multiplier"])
    def test_timeout_strategies_run(self, tiny_database, tiny_schema_model, tiny_three_table_query, strategy):
        config = BayesQOConfig(max_executions=12, timeout_strategy=strategy, seed=1)
        optimizer = BayesQO(tiny_database, tiny_schema_model, config=config)
        result = optimizer.optimize(tiny_three_table_query)
        assert result.num_executions >= 1

    def test_global_bo_variant(self, tiny_database, tiny_schema_model, tiny_three_table_query):
        config = BayesQOConfig(max_executions=12, use_trust_region=False, seed=1)
        optimizer = BayesQO(tiny_database, tiny_schema_model, config=config)
        result = optimizer.optimize(tiny_three_table_query)
        assert result.num_executions >= 1

    def test_random_initialization_variant(self, tiny_database, tiny_schema_model, tiny_three_table_query):
        config = BayesQOConfig(
            max_executions=12, initialization="random", num_initial_plans=5, seed=1
        )
        optimizer = BayesQO(tiny_database, tiny_schema_model, config=config)
        result = optimizer.optimize(tiny_three_table_query)
        assert result.sources().get("init:random", 0) >= 1

    def test_no_learning_from_timeouts_variant(self, tiny_database, tiny_schema_model, tiny_three_table_query):
        config = BayesQOConfig(max_executions=12, learn_from_timeouts=False, seed=2)
        optimizer = BayesQO(tiny_database, tiny_schema_model, config=config)
        result = optimizer.optimize(tiny_three_table_query)
        assert result.num_executions >= 1
